// Tests for uncertain-value arithmetic (stats/uncertain.h), the numeric type
// carried by signal-attribute propagation.
#include "stats/uncertain.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::stats {
namespace {

TEST(Uncertain, ConstructionAndAccessors) {
  const Uncertain u(10.0, 1.0, 0.3);
  EXPECT_DOUBLE_EQ(u.nominal, 10.0);
  EXPECT_DOUBLE_EQ(u.lower(), 9.0);
  EXPECT_DOUBLE_EQ(u.upper(), 11.0);
  EXPECT_DOUBLE_EQ(u.relative_wc(), 0.1);
  EXPECT_DOUBLE_EQ(Uncertain::exact(5.0).wc, 0.0);
}

TEST(Uncertain, FromToleranceConvention) {
  const auto u = Uncertain::from_tolerance(20.0, 3.0);
  EXPECT_DOUBLE_EQ(u.wc, 3.0);
  EXPECT_DOUBLE_EQ(u.sigma, 1.0);
}

TEST(Uncertain, AdditionAccumulatesWorstCaseLinearly) {
  const Uncertain a(1.0, 0.5, 0.1);
  const Uncertain b(2.0, 0.25, 0.2);
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.nominal, 3.0);
  EXPECT_DOUBLE_EQ(s.wc, 0.75);
  EXPECT_NEAR(s.sigma, std::sqrt(0.1 * 0.1 + 0.2 * 0.2), 1e-12);
}

TEST(Uncertain, SubtractionStillAccumulatesError) {
  // Errors never cancel in worst-case analysis.
  const Uncertain a(5.0, 0.3, 0.1);
  const Uncertain b(5.0, 0.3, 0.1);
  const auto d = a - b;
  EXPECT_DOUBLE_EQ(d.nominal, 0.0);
  EXPECT_DOUBLE_EQ(d.wc, 0.6);
}

TEST(Uncertain, ScalarOperations) {
  const Uncertain a(4.0, 0.4, 0.1);
  const auto m = a * -2.5;
  EXPECT_DOUBLE_EQ(m.nominal, -10.0);
  EXPECT_DOUBLE_EQ(m.wc, 1.0);
  EXPECT_DOUBLE_EQ((2.0 * a).nominal, 8.0);
  EXPECT_DOUBLE_EQ((a / 2.0).wc, 0.2);
  EXPECT_THROW(a / 0.0, std::invalid_argument);
  EXPECT_DOUBLE_EQ((-a).nominal, -4.0);
  EXPECT_DOUBLE_EQ((-a).wc, 0.4);
}

TEST(Uncertain, ProductPropagatesRelativeErrors) {
  const Uncertain a(10.0, 1.0, 0.0);  // 10 % wc
  const Uncertain b(2.0, 0.1, 0.0);   // 5 % wc
  const auto p = multiply(a, b);
  EXPECT_DOUBLE_EQ(p.nominal, 20.0);
  EXPECT_NEAR(p.relative_wc(), 0.15, 1e-12);  // 10 % + 5 %
}

TEST(Uncertain, QuotientPropagatesRelativeErrors) {
  const Uncertain a(10.0, 1.0, 0.0);
  const Uncertain b(2.0, 0.1, 0.0);
  const auto q = divide(a, b);
  EXPECT_DOUBLE_EQ(q.nominal, 5.0);
  EXPECT_NEAR(q.relative_wc(), 0.15, 1e-12);
  EXPECT_THROW(divide(a, Uncertain::exact(0.0)), std::invalid_argument);
}

TEST(Uncertain, ApplyUsesDerivative) {
  const Uncertain a(1.0, 0.01, 0.003);
  const auto e = apply(a, std::exp, std::exp);
  EXPECT_NEAR(e.nominal, std::exp(1.0), 1e-12);
  EXPECT_NEAR(e.wc, std::exp(1.0) * 0.01, 1e-12);
}

TEST(Uncertain, DbLinearRoundTrip) {
  const Uncertain gain_db(15.0, 1.0, 0.33);
  const auto lin = db_to_linear_amplitude(gain_db);
  EXPECT_NEAR(lin.nominal, amplitude_ratio_from_db(15.0), 1e-12);
  const auto back = linear_amplitude_to_db(lin);
  EXPECT_NEAR(back.nominal, 15.0, 1e-9);
  EXPECT_NEAR(back.wc, 1.0, 1e-9);
  EXPECT_NEAR(back.sigma, 0.33, 1e-9);
}

TEST(Uncertain, DbErrorMapsToRelativeLinearError) {
  // ±1 dB is about ±12 % in amplitude (first order: ln10/20 ≈ 0.115).
  const auto lin = db_to_linear_amplitude(Uncertain(0.0, 1.0, 0.0));
  EXPECT_NEAR(lin.relative_wc(), std::log(10.0) / 20.0, 1e-12);
}

TEST(Uncertain, StreamsReadably) {
  std::ostringstream os;
  os << Uncertain(1.5, 0.25, 0.1);
  EXPECT_NE(os.str().find("1.5"), std::string::npos);
  EXPECT_NE(os.str().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace msts::stats
