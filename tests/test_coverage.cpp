// Tests for threshold studies (core/coverage.h) — the Table 2 semantics.
#include "core/coverage.h"

#include <gtest/gtest.h>

namespace msts::core {
namespace {

stats::Normal pop() { return stats::Normal{10.0, 0.5}; }
stats::SpecLimits lower_spec() { return stats::SpecLimits::at_least(8.5); }

TEST(ThresholdStudy, HasThreeCanonicalRows) {
  const auto s = threshold_study("p", "dB", pop(), lower_spec(),
                                 stats::Uncertain(0.0, 0.4, 0.13));
  ASSERT_EQ(s.rows.size(), 3u);
  EXPECT_EQ(s.rows[0].label, "Tol");
  EXPECT_EQ(s.rows[1].label, "Tol-Err");
  EXPECT_EQ(s.rows[2].label, "Tol+Err");
  EXPECT_DOUBLE_EQ(s.error_wc, 0.4);
  EXPECT_THROW(s.row("bogus"), std::invalid_argument);
}

TEST(ThresholdStudy, GuardBandZeroesOneLoss) {
  // The paper's Table 2 pattern: Thr = Tol-Err has zero yield loss and the
  // worst coverage loss; Thr = Tol+Err has zero coverage loss and the worst
  // yield loss; Thr = Tol sits in between on both.
  const auto s = threshold_study("p", "dB", pop(), lower_spec(),
                                 stats::Uncertain(0.0, 0.4, 0.13));
  const auto& tol = s.row("Tol").outcome;
  const auto& loose = s.row("Tol-Err").outcome;
  const auto& tight = s.row("Tol+Err").outcome;

  EXPECT_NEAR(loose.yield_loss, 0.0, 1e-9);
  EXPECT_NEAR(tight.fault_coverage_loss, 0.0, 1e-9);
  EXPECT_GT(loose.fault_coverage_loss, tol.fault_coverage_loss);
  EXPECT_GT(tight.yield_loss, tol.yield_loss);
  EXPECT_GT(tol.fault_coverage_loss, 0.0);
  EXPECT_GT(tol.yield_loss, 0.0);
}

TEST(ThresholdStudy, ZeroErrorMeansNoLossAnywhere) {
  const auto s = threshold_study("p", "dB", pop(), lower_spec(),
                                 stats::Uncertain(0.0, 0.0, 0.0));
  for (const auto& r : s.rows) {
    EXPECT_NEAR(r.outcome.fault_coverage_loss, 0.0, 1e-9) << r.label;
    EXPECT_NEAR(r.outcome.yield_loss, 0.0, 1e-9) << r.label;
  }
}

TEST(ThresholdStudy, LargerErrorLargerLossesAtTol) {
  double prev_fcl = 0.0, prev_yl = 0.0;
  for (double err : {0.1, 0.3, 0.6}) {
    const auto s = threshold_study("p", "dB", pop(), lower_spec(),
                                   stats::Uncertain(0.0, err, err / 3.0));
    const auto& o = s.row("Tol").outcome;
    EXPECT_GE(o.fault_coverage_loss, prev_fcl);
    EXPECT_GE(o.yield_loss, prev_yl);
    prev_fcl = o.fault_coverage_loss;
    prev_yl = o.yield_loss;
  }
}

TEST(ThresholdStudy, TwoSidedSpecWorks) {
  const auto s = threshold_study(
      "f_c", "Hz", stats::Normal{1e6, 50e3 / 3.0},
      stats::SpecLimits::window(0.95e6, 1.05e6), stats::Uncertain(0.0, 17e3, 5.7e3));
  EXPECT_GT(s.row("Tol").outcome.fault_coverage_loss, 0.0);
  EXPECT_NEAR(s.row("Tol+Err").outcome.fault_coverage_loss, 0.0, 1e-9);
  EXPECT_NEAR(s.row("Tol-Err").outcome.yield_loss, 0.0, 1e-9);
}

TEST(ThresholdSweep, TradesMonotonically) {
  const auto sweep = threshold_sweep(pop(), lower_spec(),
                                     stats::Uncertain(0.0, 0.4, 0.13), 11);
  ASSERT_EQ(sweep.size(), 11u);
  // As the threshold tightens (shift grows), FCL falls and YL rises.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].second.fault_coverage_loss,
              sweep[i - 1].second.fault_coverage_loss + 1e-12);
    EXPECT_GE(sweep[i].second.yield_loss, sweep[i - 1].second.yield_loss - 1e-12);
  }
  EXPECT_THROW(threshold_sweep(pop(), lower_spec(), stats::Uncertain(0.0, 0.4, 0.1), 2),
               std::invalid_argument);
}

TEST(ThresholdStudy, StatisticalTreatmentShrinksLosses) {
  // RSS/Gaussian error (sigma = wc/3) concentrates probability near zero
  // error, so losses at Thr=Tol shrink relative to the uniform worst case.
  const auto err = stats::Uncertain(0.0, 0.6, 0.2);
  const auto wc = threshold_study("p", "dB", pop(), lower_spec(), err,
                                  ErrorTreatment::kWorstCase);
  const auto st = threshold_study("p", "dB", pop(), lower_spec(), err,
                                  ErrorTreatment::kStatistical);
  EXPECT_EQ(st.treatment, ErrorTreatment::kStatistical);
  EXPECT_LT(st.row("Tol").outcome.fault_coverage_loss,
            wc.row("Tol").outcome.fault_coverage_loss);
  EXPECT_LT(st.row("Tol").outcome.yield_loss, wc.row("Tol").outcome.yield_loss);
  // Gaussian tails are unbounded: the Tol+Err guard band no longer zeroes
  // FCL exactly, but it stays tiny (beyond 3 sigma of the error).
  EXPECT_LT(st.row("Tol+Err").outcome.fault_coverage_loss, 0.02);
}

TEST(ThresholdStudy, RejectsNegativeError) {
  EXPECT_THROW(threshold_study("p", "dB", pop(), lower_spec(),
                               stats::Uncertain(0.0, -0.1, 0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace msts::core
