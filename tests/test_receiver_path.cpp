// Integration tests for the assembled receive path (path/receiver_path.h)
// and the system-level measurement procedures (path/measurements.h).
#include "path/receiver_path.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"
#include "digital/fir.h"
#include "dsp/tonegen.h"
#include "path/measurements.h"
#include "path/workspace.h"

namespace msts::path {
namespace {

MeasureOptions fast_opts() {
  MeasureOptions o;
  o.digital_record = 2048;
  return o;
}

analog::Signal rf_tone(const PathConfig& c, double if_freq, double amp,
                       std::size_t digital_n) {
  const dsp::Tone t{c.lo.freq_hz + if_freq, amp, 0.0};
  analog::Signal s;
  s.fs = c.analog_fs;
  s.samples = dsp::generate_tones(std::span(&t, 1), 0.0, c.analog_fs,
                                  digital_n * c.adc_decimation);
  return s;
}

TEST(ReceiverPath, TraceHasConsistentDimensions) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(1);
  const auto trace = path.run(rf_tone(c, 500e3, 1e-3, 1024), rng);
  EXPECT_EQ(trace.after_amp.size(), 1024u * c.adc_decimation);
  EXPECT_EQ(trace.adc_codes.size(), 1024u);
  EXPECT_EQ(trace.filter_out.size(), 1024u);
  EXPECT_DOUBLE_EQ(trace.digital_fs, 4.0e6);
  EXPECT_EQ(path.fir_coeffs().size(), c.fir_taps);
}

TEST(ReceiverPath, RejectsWrongSampleRate) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(1);
  analog::Signal bad;
  bad.fs = 1.0e6;
  bad.samples.assign(256, 0.0);
  EXPECT_THROW(path.run(bad, rng), std::invalid_argument);
}

TEST(ReceiverPath, WorkspaceRunIsBitIdenticalToAllocatingRun) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  const auto rf = rf_tone(c, 500e3, 1e-3, 1024);

  stats::Rng rng_a(42);
  const auto fresh = path.run(rf, rng_a);

  // Same RNG seed through the workspace overload, reused across three runs;
  // a stale byte anywhere in the recycled buffers would break the identity.
  PathWorkspace ws;
  for (int round = 0; round < 3; ++round) {
    stats::Rng rng_b(42);
    const auto& reused = path.run(rf, rng_b, ws);
    ASSERT_EQ(reused.adc_codes, fresh.adc_codes) << "round " << round;
    ASSERT_EQ(reused.filter_out, fresh.filter_out) << "round " << round;
    ASSERT_EQ(reused.after_amp.samples, fresh.after_amp.samples) << "round " << round;
    ASSERT_EQ(reused.after_mixer.samples, fresh.after_mixer.samples) << "round " << round;
    ASSERT_EQ(reused.after_lpf.samples, fresh.after_lpf.samples) << "round " << round;
    EXPECT_DOUBLE_EQ(reused.digital_fs, fresh.digital_fs);
  }
}

TEST(ReceiverPath, WorkspaceSurvivesRecordLengthChanges) {
  // Shrinking then regrowing the record must not leave stale tail samples.
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  PathWorkspace ws;
  for (std::size_t digital_n : {std::size_t{1024}, std::size_t{256}, std::size_t{1024}}) {
    const auto rf = rf_tone(c, 500e3, 1e-3, digital_n);
    stats::Rng rng_a(7);
    stats::Rng rng_b(7);
    const auto fresh = path.run(rf, rng_a);
    const auto& reused = path.run(rf, rng_b, ws);
    ASSERT_EQ(reused.filter_out, fresh.filter_out) << "digital_n " << digital_n;
  }
}

TEST(ReceiverPath, FilterOutputVoltsIntoMatchesValueForm) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(3);
  const auto trace = path.run(rf_tone(c, 400e3, 1e-3, 512), rng);
  const auto by_value = path.filter_output_volts(trace);
  std::vector<double> into(3, -99.0);  // wrong size and content on purpose
  path.filter_output_volts_into(trace, into);
  ASSERT_EQ(into, by_value);
}

TEST(ReceiverPath, FirBlockMatchesStepwiseModel) {
  // The transient uses digital::fir_block_into; pin it against FirModel::step
  // on the path's own coefficient set, including negative and saturating-range
  // inputs around the warm-up boundary.
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  digital::FirModel model(path.fir_coeffs(), c.adc.bits);

  std::vector<std::int64_t> x;
  for (int i = 0; i < 64; ++i) {
    x.push_back(((i * 37) % 4001) - 2000);  // deterministic, in 12-bit range
  }
  std::vector<std::int64_t> block;
  digital::fir_block_into(path.fir_coeffs(), c.adc.bits, x, block);
  ASSERT_EQ(block.size(), x.size());
  model.reset();
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(block[i], model.step(x[i])) << "sample " << i;
  }
}

TEST(Measurements, PathGainNearNominalCascade) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(2);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 400e3);
  const double g = measure_path_gain_db(path, f, vpeak_from_dbm(-35.0), rng, opts);
  // Nominal cascade: amp 15 + mixer 10 + lpf 0 = 25 dB.
  EXPECT_NEAR(g, 25.0, 0.8);
}

TEST(Measurements, GainIsFlatAcrossThePassband) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(3);
  const MeasureOptions opts = fast_opts();
  const double a = vpeak_from_dbm(-35.0);
  const double g1 = measure_path_gain_db(path, coherent_if_freq(c, opts, 200e3), a,
                                         rng, opts);
  const double g2 = measure_path_gain_db(path, coherent_if_freq(c, opts, 600e3), a,
                                         rng, opts);
  EXPECT_NEAR(g1, g2, 0.6);
}

TEST(Measurements, TwoToneShowsIm3BelowCarrier) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(4);
  const MeasureOptions opts = fast_opts();
  const double f1 = coherent_if_freq(c, opts, 300e3);
  const double f2 = coherent_if_freq(c, opts, 410e3);
  const auto r = measure_two_tone(path, f1, f2, vpeak_from_dbm(-40.0), rng, opts);
  // Mixer IIP3 (+2 dBm) referred to the RF input is -13 dBm, so IM3 should
  // sit near 2*(-40 - (-13)) = -54 dBc.
  const double im3_dbc = r.im3_power_db - r.fund_power_db;
  EXPECT_LT(im3_dbc, -40.0);
  EXPECT_GT(im3_dbc, -70.0);  // visible above the noise floor
}

TEST(Measurements, PathP1dbNearMixerLimit) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(5);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 400e3);
  const double p1db = measure_path_p1db_dbm(path, f, rng, opts);
  // Mixer P1dB (-8 dBm at its input) referred to the RF input: -8 - 15 = -23.
  EXPECT_NEAR(p1db, -23.0, 2.5);
}

TEST(Measurements, CutoffNearLpfNominal) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(6);
  const MeasureOptions opts = fast_opts();
  const double fc = measure_path_cutoff_hz(path, vpeak_from_dbm(-35.0), rng, opts);
  EXPECT_NEAR(fc, c.lpf.cutoff_hz.nominal, 0.12 * c.lpf.cutoff_hz.nominal);
}

TEST(Measurements, OutputDcTracksPathOffsets) {
  PathConfig c = reference_path_config();
  // Exaggerate the ADC offset so it dominates the (noisy) estimate.
  c.adc.offset_error_v = stats::Uncertain::exact(20e-3);
  const ReceiverPath path(c);
  stats::Rng rng(7);
  const double dc = measure_output_dc_v(path, rng, fast_opts());
  EXPECT_NEAR(dc, 20e-3, 2e-3);
}

TEST(Measurements, SpectrumReportShowsHealthyDynamicRange) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(8);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 400e3);
  const auto rep = measure_spectrum_report(path, f, vpeak_from_dbm(-40.0), rng, opts);
  EXPECT_GT(rep.snr_db, 45.0);
  EXPECT_GT(rep.sfdr_db, 40.0);
}

TEST(Measurements, LoFrequencyErrorRecovered) {
  PathConfig c = reference_path_config();
  c.lo.freq_error_ppm = stats::Uncertain::exact(8.0);
  c.lo.phase_noise_rad = stats::Uncertain::exact(1e-4);
  const ReceiverPath path(c);
  stats::Rng rng(9);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 400e3);
  const double ppm =
      measure_lo_freq_error_ppm(path, f, vpeak_from_dbm(-30.0), rng, opts);
  EXPECT_NEAR(ppm, 8.0, 1.0);
}

TEST(Measurements, SampledPathsSpreadAroundNominal) {
  const PathConfig c = reference_path_config();
  stats::Rng mc(10);
  stats::Rng noise(11);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 400e3);
  double min_g = 1e9, max_g = -1e9;
  for (int i = 0; i < 10; ++i) {
    const ReceiverPath path = ReceiverPath::sampled(c, mc);
    const double g = measure_path_gain_db(path, f, vpeak_from_dbm(-35.0), noise, opts);
    min_g = std::min(min_g, g);
    max_g = std::max(max_g, g);
  }
  // Gains vary with tolerance but stay within the worst-case stack (+/- ~2.5 dB).
  EXPECT_GT(max_g - min_g, 0.2);
  EXPECT_GT(min_g, 25.0 - 3.0);
  EXPECT_LT(max_g, 25.0 + 3.0);
}

TEST(Measurements, GroupDelayMatchesFirPlusLpf) {
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(13);
  const MeasureOptions opts = fast_opts();
  const double f_if = coherent_if_freq(c, opts, 400e3);
  const double measured =
      measure_group_delay_s(path, f_if, vpeak_from_dbm(-35.0), rng, opts);
  // Linear-phase FIR contributes (taps-1)/2 digital samples; the LPF its
  // own analytic group delay at the IF.
  const double fir_delay =
      (static_cast<double>(c.fir_taps) - 1.0) / 2.0 / c.digital_fs();
  const double lpf_delay = path.lpf().group_delay_at(f_if, c.analog_fs);
  EXPECT_NEAR(measured, fir_delay + lpf_delay, 0.15e-6);
}

TEST(Measurements, GroupDelayRisesTowardTheCutoff) {
  // Butterworth group delay peaks near fc: the path delay at 0.9 MHz must
  // exceed the mid-band value.
  const PathConfig c = reference_path_config();
  const ReceiverPath path(c);
  stats::Rng rng(14);
  const MeasureOptions opts = fast_opts();
  const double mid = measure_group_delay_s(path, coherent_if_freq(c, opts, 300e3),
                                           vpeak_from_dbm(-35.0), rng, opts);
  const double edge = measure_group_delay_s(path, coherent_if_freq(c, opts, 900e3),
                                            vpeak_from_dbm(-35.0), rng, opts);
  EXPECT_GT(edge, mid + 0.05e-6);
}

TEST(Measurements, GroupDelayNarrowsToneSpacingForLongFirs) {
  // Regression: the phase-slope delay is only unambiguous within
  // +/- 1/(2 df). With the old fixed +/-4-bin spacing a 701-tap FIR
  // (87.5 us of delay against a 51.2 us unambiguous range at this record)
  // wrapped the phase difference past pi and silently reported ~40 us. The
  // measurement now narrows the spacing to +/-2 bins, where the delay fits,
  // and must recover the true value.
  PathConfig c = reference_path_config();
  c.fir_taps = 701;
  const ReceiverPath path(c);
  stats::Rng rng(21);
  const MeasureOptions opts;  // default 4096-sample record
  const double f_if = coherent_if_freq(c, opts, 400e3);
  const double measured =
      measure_group_delay_s(path, f_if, vpeak_from_dbm(-35.0), rng, opts);
  const double fir_delay =
      (static_cast<double>(c.fir_taps) - 1.0) / 2.0 / c.digital_fs();
  const double lpf_delay = path.lpf().group_delay_at(f_if, c.analog_fs);
  EXPECT_NEAR(measured, fir_delay + lpf_delay, 0.3e-6);
}

TEST(Measurements, GroupDelayRefusesToAliasWhenDelayExceedsRange) {
  // 1025 taps is 128 us of FIR delay — beyond the unambiguous range even at
  // the narrowest tone spacing for a 2048-sample record (51.2 us). The old
  // code happily measured a wrapped phase difference (128 us aliases to
  // ~0 us at +/-4-bin spacing); it must refuse instead of lying.
  PathConfig c = reference_path_config();
  c.fir_taps = 1025;
  const ReceiverPath path(c);
  stats::Rng rng(22);
  const MeasureOptions opts = fast_opts();
  const double f_if = coherent_if_freq(c, opts, 400e3);
  EXPECT_THROW(
      measure_group_delay_s(path, f_if, vpeak_from_dbm(-35.0), rng, opts),
      std::invalid_argument);
}

TEST(Measurements, ClockSpurVisibleInOutputSpectrum) {
  PathConfig c = reference_path_config();
  c.lpf.clock_spur_v = stats::Uncertain::exact(2e-3);
  const ReceiverPath path(c);
  stats::Rng rng(12);
  const MeasureOptions opts = fast_opts();
  const double f = coherent_if_freq(c, opts, 300e3);
  const double freqs[] = {f};
  const double amps[] = {vpeak_from_dbm(-35.0)};
  const auto spectrum = run_two_port(path, freqs, amps, rng, opts);
  // The 6.4 MHz clock folds to 1.6 MHz at the 4 MHz digital rate; the FIR
  // attenuates it there but it must still stand clear of the noise floor.
  const auto spur = dsp::measure_tone(spectrum, 1.6e6);
  const double fir_att = path.fir_magnitude_at(1.6e6);
  EXPECT_NEAR(spur.amplitude / fir_att, 2e-3, 1e-3);
}

}  // namespace
}  // namespace msts::path
