// Tests for netlist serialisation (digital/netlist_io.h): text round-trips
// must preserve structure and function exactly.
#include "digital/netlist_io.h"

#include <gtest/gtest.h>

#include "digital/fault_sim.h"
#include "digital/fir.h"
#include "dsp/fir_design.h"
#include "stats/rng.h"

namespace msts::digital {
namespace {

TEST(NetlistIo, RoundTripsSmallCircuit) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_const(true);
  const NetId g = nl.add_gate(GateType::kNand, a, b, "g1");
  const NetId n = nl.add_gate(GateType::kNot, g, 0, "inv");
  const NetId q = nl.add_dff(n, "state");
  nl.mark_output(q, "y");

  const Netlist back = from_text(to_text(nl));
  ASSERT_EQ(back.num_nets(), nl.num_nets());
  ASSERT_EQ(back.inputs().size(), 2u);
  ASSERT_EQ(back.outputs().size(), 1u);
  ASSERT_EQ(back.dffs().size(), 1u);
  for (NetId id = 0; id < nl.num_nets(); ++id) {
    EXPECT_EQ(back.gate(id).type, nl.gate(id).type) << "net " << id;
    EXPECT_EQ(back.gate(id).fanin0, nl.gate(id).fanin0) << "net " << id;
    EXPECT_EQ(back.gate(id).fanin1, nl.gate(id).fanin1) << "net " << id;
    EXPECT_EQ(back.gate(id).name, nl.gate(id).name) << "net " << id;
  }
  EXPECT_EQ(back.output_name(0), "y");
}

TEST(NetlistIo, RoundTrippedFirIsFunctionallyIdentical) {
  const auto h = dsp::design_lowpass(13, 0.25);
  const auto q = dsp::quantize_coefficients(h, 8);
  const FirCircuit fir = build_fir(q, 8, 8);

  const Netlist back = from_text(to_text(fir.netlist));
  Bus in, out;
  for (std::size_t i = 0; i < fir.input.width(); ++i) in.bits.push_back(back.inputs()[i]);
  for (std::size_t i = 0; i < fir.output.width(); ++i) out.bits.push_back(back.outputs()[i]);

  stats::Rng rng(4);
  std::vector<std::int64_t> stim;
  for (int i = 0; i < 128; ++i) {
    stim.push_back(static_cast<std::int64_t>(rng.uniform_int(256)) - 128);
  }
  const auto y1 = simulate_good(fir.netlist, fir.input, fir.output, stim);
  const auto y2 = simulate_good(back, in, out, stim);
  EXPECT_EQ(y1, y2);
}

TEST(NetlistIo, IgnoresCommentsAndBlankLines) {
  const Netlist nl = from_text(
      "# header comment\n"
      "\n"
      "input a\n"
      "# another comment\n"
      "gate NOT 0 inv\n"
      "output 1 y\n");
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(NetlistIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text("gate FROB 0\n"), std::invalid_argument);
  EXPECT_THROW(from_text("gate AND 0 1\n"), std::invalid_argument);  // undeclared
  EXPECT_THROW(from_text("input a\ngate AND 0\n"), std::invalid_argument);
  EXPECT_THROW(from_text("output 5\n"), std::invalid_argument);
  EXPECT_THROW(from_text("input a\ndff 7\n"), std::invalid_argument);
  EXPECT_THROW(from_text("bogus\n"), std::invalid_argument);
}

TEST(NetlistIo, UnnamedCellsRoundTrip) {
  Netlist nl;
  const NetId a = nl.add_input("");
  nl.add_gate(GateType::kBuf, a);
  const Netlist back = from_text(to_text(nl));
  EXPECT_EQ(back.num_nets(), 2u);
  EXPECT_EQ(back.gate(1).type, GateType::kBuf);
}

}  // namespace
}  // namespace msts::digital
