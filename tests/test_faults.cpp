// Tests for the stuck-at fault universe and equivalence collapsing
// (digital/faults.h).
#include "digital/faults.h"

#include <set>

#include <gtest/gtest.h>

#include "digital/fir.h"
#include "dsp/fir_design.h"

namespace msts::digital {
namespace {

TEST(AllFaults, TwoPerNetExceptConstants) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_const(true);
  nl.add_const(false);
  nl.add_gate(GateType::kAnd, a, b);
  const auto faults = all_faults(nl);
  EXPECT_EQ(faults.size(), 2u * 3u);  // a, b, and-gate; constants excluded
}

TEST(CollapsedFaults, BufferChainCollapsesToOneClassPerPolarity) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b1 = nl.add_gate(GateType::kBuf, a);
  const NetId b2 = nl.add_gate(GateType::kBuf, b1);
  nl.mark_output(b2);
  const auto collapsed = collapsed_faults(nl);
  // All three nets are equivalent through the buffers: 2 classes remain.
  EXPECT_EQ(collapsed.size(), 2u);
}

TEST(CollapsedFaults, InverterSwapsPolarity) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n = nl.add_gate(GateType::kNot, a);
  nl.mark_output(n);
  const auto map = collapse_map(nl);
  // a/SA0 == n/SA1 and a/SA1 == n/SA0.
  EXPECT_EQ(map[2 * a + 0], map[2 * n + 1]);
  EXPECT_EQ(map[2 * a + 1], map[2 * n + 0]);
  EXPECT_NE(map[2 * a + 0], map[2 * a + 1]);
}

TEST(CollapsedFaults, AndGateInputSa0EquivalentToOutputSa0) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, a, b);
  nl.mark_output(g);
  const auto map = collapse_map(nl);
  EXPECT_EQ(map[2 * a + 0], map[2 * g + 0]);
  EXPECT_EQ(map[2 * b + 0], map[2 * g + 0]);
  // SA1 faults stay distinct.
  EXPECT_NE(map[2 * a + 1], map[2 * g + 1]);
  // 6 faults - 2 merged = 4 classes.
  EXPECT_EQ(collapsed_faults(nl).size(), 4u);
}

TEST(CollapsedFaults, FanoutBlocksCollapsing) {
  // A net driving two gates must keep its own faults (the textbook rule).
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g1 = nl.add_gate(GateType::kAnd, a, b);
  const NetId g2 = nl.add_gate(GateType::kOr, a, b);
  nl.mark_output(g1);
  nl.mark_output(g2);
  const auto map = collapse_map(nl);
  EXPECT_NE(map[2 * a + 0], map[2 * g1 + 0]);
  EXPECT_NE(map[2 * a + 1], map[2 * g2 + 1]);
}

TEST(CollapsedFaults, NandNorRules) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId gn = nl.add_gate(GateType::kNand, a, b);
  nl.mark_output(gn);
  const auto map = collapse_map(nl);
  // NAND: input SA0 == output SA1.
  EXPECT_EQ(map[2 * a + 0], map[2 * gn + 1]);
  EXPECT_EQ(map[2 * b + 0], map[2 * gn + 1]);
}

TEST(CollapsedFaults, XorHasNoEquivalence) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kXor, a, b);
  nl.mark_output(g);
  EXPECT_EQ(collapsed_faults(nl).size(), 6u);
}

TEST(CollapsedFaults, EveryFaultHasARepresentativeInTheList) {
  const auto h = dsp::design_lowpass(13, 0.125);
  const auto q = dsp::quantize_coefficients(h, 8);
  const FirCircuit fir = build_fir(q, 8, 8);
  const Netlist nl = fir.netlist.with_explicit_branches();

  const auto collapsed = collapsed_faults(nl);
  const auto map = collapse_map(nl);
  std::set<std::uint32_t> reps;
  for (const Fault& f : collapsed) {
    reps.insert(map[2 * f.net + (f.stuck_at_one ? 1 : 0)]);
  }
  EXPECT_EQ(reps.size(), collapsed.size());  // one per class
  for (const Fault& f : all_faults(nl)) {
    EXPECT_EQ(reps.count(map[2 * f.net + (f.stuck_at_one ? 1 : 0)]), 1u);
  }
  // Collapsing actually shrinks a real netlist.
  EXPECT_LT(collapsed.size(), all_faults(nl).size());
  EXPECT_GT(collapsed.size(), all_faults(nl).size() / 4);
}

TEST(Describe, IncludesPolarityAndType) {
  Netlist nl;
  const NetId a = nl.add_input("stim");
  const auto s0 = describe(nl, Fault{a, false});
  const auto s1 = describe(nl, Fault{a, true});
  EXPECT_NE(s0.find("SA0"), std::string::npos);
  EXPECT_NE(s1.find("SA1"), std::string::npos);
  EXPECT_NE(s0.find("INPUT"), std::string::npos);
  EXPECT_NE(s0.find("stim"), std::string::npos);
}

}  // namespace
}  // namespace msts::digital
