// Tests for the attribute-domain block models (core/attr_models.h): the
// symbolic propagation must agree with the sample-level simulation within
// the tolerances it claims.
#include "core/attr_models.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"
#include "dsp/fir_design.h"
#include "dsp/metrics.h"
#include "dsp/spectrum.h"
#include "dsp/tonegen.h"
#include "path/measurements.h"

namespace msts::core {
namespace {

using stats::Uncertain;

path::PathConfig cfg() { return path::reference_path_config(); }

SignalAttributes rf_probe(double f_rf, double amp) {
  return make_stimulus(cfg().analog_fs,
                       {ToneAttr{Uncertain::exact(f_rf), Uncertain::exact(amp),
                                 Uncertain::exact(0.0)}});
}

TEST(AmpAttrModel, GainAndToleranceTracked) {
  const AmpAttrModel amp(cfg().amp);
  const auto out = amp.forward(rf_probe(10.4e6, 1e-3));
  ASSERT_EQ(out.tones.size(), 1u);
  const double expected = 1e-3 * amplitude_ratio_from_db(15.0);
  EXPECT_NEAR(out.tones[0].amplitude.nominal, expected, 1e-9);
  // ±1 dB tolerance is about ±12 % worst case.
  EXPECT_NEAR(out.tones[0].amplitude.relative_wc(), std::log(10.0) / 20.0, 0.01);
  // Frequency is untouched by an amplifier.
  EXPECT_DOUBLE_EQ(out.tones[0].freq.nominal, 10.4e6);
}

TEST(AmpAttrModel, AddsHarmonicSpurs) {
  const AmpAttrModel amp(cfg().amp);
  const auto out = amp.forward(rf_probe(10.4e6, 0.01));
  bool has_hd2 = false, has_hd3 = false;
  for (const SpurAttr& s : out.spurs) {
    if (s.origin == "amp.HD2") {
      has_hd2 = true;
      EXPECT_DOUBLE_EQ(s.freq, 2 * 10.4e6);
    }
    if (s.origin == "amp.HD3") {
      has_hd3 = true;
      EXPECT_DOUBLE_EQ(s.freq, 3 * 10.4e6);
    }
  }
  EXPECT_TRUE(has_hd2);
  EXPECT_TRUE(has_hd3);
}

TEST(AmpAttrModel, NoiseGrowsWithNf) {
  auto params = cfg().amp;
  const AmpAttrModel amp(params);
  auto in = rf_probe(10.4e6, 1e-3);
  in.noise_power = Uncertain::exact(1e-12);
  const auto out = amp.forward(in);
  const double g2 = std::pow(amplitude_ratio_from_db(15.0), 2.0);
  EXPECT_GT(out.noise_power.nominal, 1e-12 * g2);  // NF adds on top of gain
}

TEST(MixerAttrModel, DownconvertsAndAddsLoUncertainty) {
  const MixerAttrModel mixer(cfg().mixer, cfg().lo);
  const auto out = mixer.forward(rf_probe(10.4e6, 1e-3));
  ASSERT_EQ(out.tones.size(), 1u);
  EXPECT_NEAR(out.tones[0].freq.nominal, 400e3, 1e-6);
  // ±10 ppm of 10 MHz -> ±100 Hz worst-case frequency uncertainty.
  EXPECT_NEAR(out.tones[0].freq.wc, 100.0, 1e-9);
  EXPECT_NEAR(out.tones[0].amplitude.nominal,
              1e-3 * amplitude_ratio_from_db(10.0), 1e-9);
}

TEST(MixerAttrModel, DcBecomesLoSpurNotOutputDc) {
  const MixerAttrModel mixer(cfg().mixer, cfg().lo);
  auto in = rf_probe(10.4e6, 1e-3);
  in.dc = Uncertain::exact(5e-3);
  const auto out = mixer.forward(in);
  EXPECT_DOUBLE_EQ(out.dc.nominal, 0.0);
  bool found = false;
  for (const SpurAttr& s : out.spurs) {
    if (s.origin == "mixer.LO-feedthrough") {
      found = true;
      EXPECT_DOUBLE_EQ(s.freq, 10e6);
      EXPECT_GT(s.amplitude.nominal, amplitude_ratio_from_db(-40.0) * 0.9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LpfAttrModel, AttenuationFollowsResponse) {
  const LpfAttrModel lpf(cfg().lpf);
  const analog::LowPassFilter ref(cfg().lpf);
  for (double f : {100e3, 500e3, 1e6, 2e6, 5e6}) {
    const auto g = lpf.gain_at(f, cfg().analog_fs);
    EXPECT_NEAR(g.nominal, ref.magnitude_at(f, cfg().analog_fs), 1e-12) << f;
  }
  // Cutoff tolerance matters at the edge, not deep in the pass-band.
  const auto g_pass = lpf.gain_at(100e3, cfg().analog_fs);
  const auto g_edge = lpf.gain_at(1e6, cfg().analog_fs);
  EXPECT_GT(g_edge.wc / g_edge.nominal, 2.0 * g_pass.wc / g_pass.nominal);
}

TEST(LpfAttrModel, AddsClockSpurAndShrinksNoiseBand) {
  const LpfAttrModel lpf(cfg().lpf);
  auto in = rf_probe(400e3, 1e-3);
  in.noise_power = Uncertain::exact(1e-8);
  const auto out = lpf.forward(in);
  bool clock = false;
  for (const SpurAttr& s : out.spurs) clock |= (s.origin == "lpf.clock");
  EXPECT_TRUE(clock);
  // 1 MHz noise bandwidth out of 16 MHz Nyquist: noise power drops sharply.
  EXPECT_LT(out.noise_power.nominal, 0.2 * 1e-8);
}

TEST(AdcAttrModel, AddsQuantizationNoiseAndOffset) {
  const AdcAttrModel adc(cfg().adc, cfg().adc_decimation);
  auto in = rf_probe(400e3, 0.1);
  in.fs = cfg().analog_fs;
  const auto out = adc.forward(in);
  EXPECT_DOUBLE_EQ(out.fs, cfg().digital_fs());
  const double lsb = 2.0 * cfg().adc.vref / 4096.0;
  EXPECT_GE(out.noise_power.nominal, lsb * lsb / 12.0);
  EXPECT_DOUBLE_EQ(out.dc.wc, cfg().adc.offset_error_v.wc);
}

TEST(AdcAttrModel, FoldsOutOfBandTones) {
  const AdcAttrModel adc(cfg().adc, cfg().adc_decimation);
  // 3.5 MHz at a 4 MHz digital rate folds to 0.5 MHz.
  auto in = make_stimulus(cfg().analog_fs,
                          {ToneAttr{Uncertain::exact(3.5e6), Uncertain::exact(0.01),
                                    Uncertain::exact(0.0)}});
  const auto out = adc.forward(in);
  EXPECT_NEAR(out.tones[0].freq.nominal, 0.5e6, 1.0);
}

TEST(FirAttrModel, ExactResponseNoAddedNoise) {
  const auto cfgv = cfg();
  const auto h = dsp::design_lowpass(cfgv.fir_taps, cfgv.fir_cutoff_norm);
  const auto q = dsp::quantize_coefficients(h, cfgv.fir_coeff_frac_bits);
  const FirAttrModel fir(q, cfgv.fir_coeff_frac_bits);

  auto in = make_stimulus(cfgv.digital_fs(),
                          {ToneAttr{Uncertain::exact(400e3), Uncertain(0.1, 0.01, 0.003),
                                    Uncertain::exact(0.0)}});
  in.noise_power = Uncertain::exact(1e-9);
  const auto out = fir.forward(in);
  const double mag = fir.magnitude_at(400e3, cfgv.digital_fs());
  EXPECT_NEAR(out.tones[0].amplitude.nominal, 0.1 * mag, 1e-12);
  // Known filter: relative uncertainty unchanged.
  EXPECT_NEAR(out.tones[0].amplitude.relative_wc(), 0.1, 1e-9);
  // Noise through sum(h^2) < 1 for this low-pass.
  EXPECT_LT(out.noise_power.nominal, 1e-9);
  EXPECT_GT(out.noise_power.nominal, 0.0);
}

TEST(PathAttrModel, CascadeGainMatchesBlockSum) {
  const PathAttrModel model(cfg());
  const double f_rf = 10.4e6;
  const auto g_amp_in = model.gain_db_to(PathAttrModel::kAmp, f_rf);
  EXPECT_NEAR(g_amp_in.nominal, 0.0, 1e-9);
  const auto g_mixer_in = model.gain_db_to(PathAttrModel::kMixer, f_rf);
  EXPECT_NEAR(g_mixer_in.nominal, 15.0, 0.01);
  EXPECT_NEAR(g_mixer_in.wc, 1.0, 0.01);
  const auto g_path = model.path_gain_db(f_rf);
  // amp 15 + mixer 10 + lpf(~0 at 400 kHz) + adc(~0) + fir(~0 in band).
  EXPECT_NEAR(g_path.nominal, 25.0, 0.3);
  // Worst case stacks the gain tolerances: >= 1 + 1 + 0.5 dB.
  EXPECT_GT(g_path.wc, 2.2);
}

TEST(PathAttrModel, GainSplitsAdd) {
  const PathAttrModel model(cfg());
  const double f_rf = 10.4e6;
  const double to = model.gain_db_to(PathAttrModel::kLpf, f_rf).nominal;
  const double from = model.gain_db_from(PathAttrModel::kLpf, f_rf).nominal;
  EXPECT_NEAR(to + from, model.path_gain_db(f_rf).nominal, 1e-6);
}

TEST(PathAttrModel, InverseStimulusComputation) {
  const PathAttrModel model(cfg());
  const double f_rf = 10.4e6;
  const double pi_amp = model.pi_amplitude_for(PathAttrModel::kAdc, f_rf, 0.1);
  // Forward-propagating that amplitude must land 0.1 V at the ADC input.
  const auto at_adc = model.forward_upto(
      make_stimulus(cfg().analog_fs, {ToneAttr{Uncertain::exact(f_rf),
                                               Uncertain::exact(pi_amp),
                                               Uncertain::exact(0.0)}}),
      PathAttrModel::kAdc);
  EXPECT_NEAR(at_adc.tones[0].amplitude.nominal, 0.1, 1e-6);
}

TEST(PathAttrModel, AgreesWithTransientSimulation) {
  // The headline property: the symbolic gain must predict the simulated
  // path gain within its own worst-case band (nominal path here).
  const auto c = cfg();
  const PathAttrModel model(c);
  const path::ReceiverPath path(c);
  stats::Rng rng(21);
  path::MeasureOptions opts;
  opts.digital_record = 2048;
  const double f_if = path::coherent_if_freq(c, opts, 400e3);
  const double measured =
      path::measure_path_gain_db(path, f_if, vpeak_from_dbm(-38.0), rng, opts);
  const auto predicted = model.path_gain_db(c.lo.freq_hz + f_if);
  EXPECT_NEAR(measured, predicted.nominal, 0.5);
}

TEST(PathAttrModel, PredictsFilterInputNoiseLevel) {
  // Attribute-model SNR at the filter input vs simulated SNR at the ADC
  // output: within a few dB (the noise model is an estimate, the paper
  // trades that into the mask margin).
  const auto c = cfg();
  const PathAttrModel model(c);
  const path::ReceiverPath path(c);
  stats::Rng rng(22);

  const double amp_pi = 2e-3;
  const double f_rf = 10.4e6;
  const auto predicted = model.forward_upto(
      make_stimulus(c.analog_fs, {ToneAttr{Uncertain::exact(f_rf),
                                           Uncertain::exact(amp_pi),
                                           Uncertain::exact(0.0)}}),
      PathAttrModel::kAdc + 1);

  analog::Signal rf;
  rf.fs = c.analog_fs;
  const dsp::Tone t{f_rf, amp_pi, 0.0};
  rf.samples = dsp::generate_tones(std::span(&t, 1), 0.0, c.analog_fs, 2048 * 8);
  const auto trace = path.run(rf, rng);
  const auto volts = path.adc_output_volts(trace);
  dsp::AnalysisOptions ao;
  ao.fundamentals = {400e3};
  const auto rep = dsp::analyze_spectrum(
      dsp::Spectrum(volts, trace.digital_fs, dsp::WindowType::kBlackmanHarris4), ao);
  EXPECT_NEAR(predicted.snr_db(), rep.snr_db, 4.0);
}

}  // namespace
}  // namespace msts::core
