// Tests for probability distributions (stats/distributions.h).
#include "stats/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace msts::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, InvertsTheCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileRoundTrip,
                         ::testing::Values(1e-9, 1e-6, 0.001, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 0.999, 1.0 - 1e-6));

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(Normal, ScalesAndShifts) {
  const Normal n{10.0, 2.0};
  EXPECT_NEAR(n.cdf(10.0), 0.5, 1e-12);
  EXPECT_NEAR(n.cdf(12.0), normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(n.quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(n.pdf(10.0), normal_pdf(0.0) / 2.0, 1e-12);
}

TEST(Normal, PdfIntegratesToOne) {
  const Normal n{-3.0, 0.7};
  double acc = 0.0;
  const int steps = 20000;
  const double lo = n.mean - 10.0 * n.sigma;
  const double hi = n.mean + 10.0 * n.sigma;
  const double dx = (hi - lo) / steps;
  for (int i = 0; i <= steps; ++i) {
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    acc += w * n.pdf(lo + dx * i) * dx;
  }
  EXPECT_NEAR(acc, 1.0, 1e-8);
}

TEST(Normal, FromToleranceUsesThreeSigma) {
  const Normal n = Normal::from_tolerance(5.0, 1.5);
  EXPECT_DOUBLE_EQ(n.mean, 5.0);
  EXPECT_DOUBLE_EQ(n.sigma, 0.5);
  // Fraction inside the tolerance band is the 3-sigma probability.
  EXPECT_NEAR(n.cdf(6.5) - n.cdf(3.5), 0.9973, 1e-4);
}

TEST(Normal, FromToleranceRejectsBadArguments) {
  EXPECT_THROW(Normal::from_tolerance(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Normal::from_tolerance(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(UniformDist, PdfCdfQuantile) {
  const Uniform u{2.0, 6.0};
  EXPECT_DOUBLE_EQ(u.pdf(4.0), 0.25);
  EXPECT_DOUBLE_EQ(u.pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.25), 3.0);
  EXPECT_THROW(u.quantile(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace msts::stats
