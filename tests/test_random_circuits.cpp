// Randomized property tests for the digital substrate: on randomly generated
// sequential netlists, the 64-way parallel fault simulator must agree
// exactly with one-fault-at-a-time simulation, and fault collapsing must
// never change detectability.
#include <map>

#include <gtest/gtest.h>

#include "digital/fault_sim.h"
#include "digital/netlist.h"
#include "stats/rng.h"

namespace msts::digital {
namespace {

struct RandomCircuit {
  Netlist nl;
  Bus in;
  Bus out;
};

// Random DAG of gates over a small input bus, with a few DFFs sprinkled in.
RandomCircuit make_random_circuit(stats::Rng& rng, std::size_t inputs,
                                  std::size_t gates, std::size_t outputs) {
  RandomCircuit c;
  std::vector<NetId> pool;
  for (std::size_t i = 0; i < inputs; ++i) {
    const NetId n = c.nl.add_input("i" + std::to_string(i));
    c.in.bits.push_back(n);
    pool.push_back(n);
  }
  const GateType kinds[] = {GateType::kAnd, GateType::kOr,  GateType::kNand,
                            GateType::kNor, GateType::kXor, GateType::kXnor,
                            GateType::kNot, GateType::kBuf};
  for (std::size_t g = 0; g < gates; ++g) {
    if (rng.uniform() < 0.12) {
      pool.push_back(c.nl.add_dff(pool[rng.uniform_int(pool.size())]));
      continue;
    }
    const GateType t = kinds[rng.uniform_int(8)];
    const NetId a = pool[rng.uniform_int(pool.size())];
    const NetId b = pool[rng.uniform_int(pool.size())];
    pool.push_back(c.nl.add_gate(t, a, b));
  }
  for (std::size_t o = 0; o < outputs; ++o) {
    const NetId n = pool[pool.size() - 1 - o];
    c.nl.mark_output(n);
    c.out.bits.push_back(n);
  }
  return c;
}

std::vector<std::int64_t> random_stimulus(stats::Rng& rng, std::size_t inputs,
                                          std::size_t cycles) {
  std::vector<std::int64_t> stim;
  const std::int64_t hi = 1ll << (inputs - 1);
  for (std::size_t i = 0; i < cycles; ++i) {
    stim.push_back(static_cast<std::int64_t>(rng.uniform_int(2 * hi)) - hi);
  }
  return stim;
}

class RandomCircuitProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitProperty, ParallelAgreesWithSerialFaultSimulation) {
  stats::Rng rng(GetParam());
  const auto c = make_random_circuit(rng, 6, 80, 3);
  const auto stim = random_stimulus(rng, 6, 48);
  const Netlist expanded = c.nl.with_explicit_branches();
  Bus ein, eout;
  for (std::size_t i = 0; i < c.in.width(); ++i) ein.bits.push_back(expanded.inputs()[i]);
  for (std::size_t i = 0; i < c.out.width(); ++i) eout.bits.push_back(expanded.outputs()[i]);

  auto faults = collapsed_faults(expanded);
  // Cap for runtime: a random prefix is representative.
  if (faults.size() > 150) faults.resize(150);

  const auto batch = simulate_faults(expanded, ein, eout, stim, faults);
  for (std::size_t i = 0; i < faults.size(); i += 7) {
    const Fault one[] = {faults[i]};
    const auto serial = simulate_faults(expanded, ein, eout, stim, one);
    ASSERT_EQ(serial.detected[0], batch.detected[i])
        << describe(expanded, faults[i]) << " seed " << GetParam();
  }
}

TEST_P(RandomCircuitProperty, EquivalentFaultsAreEquallyDetectable) {
  stats::Rng rng(GetParam() ^ 0xABCDEFull);
  const auto c = make_random_circuit(rng, 5, 60, 2);
  const auto stim = random_stimulus(rng, 5, 64);
  const Netlist expanded = c.nl.with_explicit_branches();
  Bus ein, eout;
  for (std::size_t i = 0; i < c.in.width(); ++i) ein.bits.push_back(expanded.inputs()[i]);
  for (std::size_t i = 0; i < c.out.width(); ++i) eout.bits.push_back(expanded.outputs()[i]);

  const auto all = all_faults(expanded);
  const auto map = collapse_map(expanded);
  const auto r = simulate_faults(expanded, ein, eout, stim, all);

  // Every fault in an equivalence class must share its verdict.
  std::map<std::uint32_t, bool> verdict;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::uint32_t rep = map[2 * all[i].net + (all[i].stuck_at_one ? 1 : 0)];
    const auto it = verdict.find(rep);
    if (it == verdict.end()) {
      verdict[rep] = r.detected[i];
    } else {
      ASSERT_EQ(it->second, r.detected[i])
          << "class " << rep << " inconsistent at " << describe(expanded, all[i])
          << " seed " << GetParam();
    }
  }
}

TEST_P(RandomCircuitProperty, GoodMachineUnaffectedByInjectedFaults) {
  stats::Rng rng(GetParam() ^ 0x5A5A5Aull);
  const auto c = make_random_circuit(rng, 6, 70, 2);
  const auto stim = random_stimulus(rng, 6, 32);
  auto faults = all_faults(c.nl);
  if (faults.size() > 120) faults.resize(120);
  const auto with = simulate_faults(c.nl, c.in, c.out, stim, faults);
  const auto without = simulate_good(c.nl, c.in, c.out, stim);
  ASSERT_EQ(with.good_waveform, without) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace msts::digital
