// Tests for digital-filter test synthesis (core/digital_test.h).
#include "core/digital_test.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::core {
namespace {

path::PathConfig cfg() { return path::reference_path_config(); }

// Every n-th collapsed fault: keeps unit tests fast; benches run all.
std::vector<digital::Fault> subsample(const std::vector<digital::Fault>& all,
                                      std::size_t stride) {
  std::vector<digital::Fault> out;
  for (std::size_t i = 0; i < all.size(); i += stride) out.push_back(all[i]);
  return out;
}

TEST(DigitalTester, PlanPlacesCleanInBandTones) {
  const DigitalTester tester(cfg());
  DigitalTestOptions opt;
  const auto plan = tester.plan(opt);
  ASSERT_EQ(plan.if_freqs.size(), 2u);
  for (double f : plan.if_freqs) {
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, cfg().lpf.cutoff_hz.nominal);
    EXPECT_LT(f, cfg().fir_cutoff_norm * cfg().digital_fs());
  }
  ASSERT_EQ(plan.rf_tones.size(), 2u);
  for (const auto& t : plan.rf_tones) {
    EXPECT_GT(t.freq, cfg().lo.freq_hz);  // up-converted stimulus
    EXPECT_GT(t.amplitude, 0.0);
  }
  EXPECT_EQ(plan.mask_power_db.size(), opt.record / 2 + 1);
  EXPECT_EQ(plan.excluded.size(), opt.record / 2 + 1);
}

TEST(DigitalTester, PlanReportsPropagatedSignalQuality) {
  const DigitalTester tester(cfg());
  const auto plan = tester.plan(DigitalTestOptions{});
  // Attribute propagation predicts a healthy but finite SNR at the filter.
  EXPECT_GT(plan.expected_filter_in_snr_db, 40.0);
  EXPECT_LT(plan.expected_filter_in_snr_db, 90.0);
  EXPECT_GT(plan.expected_filter_in_sfdr_db, 20.0);
}

TEST(DigitalTester, ExcludedBinsCoverTonesAndDc) {
  const DigitalTester tester(cfg());
  DigitalTestOptions opt;
  const auto plan = tester.plan(opt);
  const double bin_w = cfg().digital_fs() / static_cast<double>(opt.record);
  EXPECT_TRUE(plan.excluded[0]);
  for (double f : plan.if_freqs) {
    EXPECT_TRUE(plan.excluded[static_cast<std::size_t>(std::llround(f / bin_w))]) << f;
  }
  // But most bins remain active for detection.
  std::size_t active = 0;
  for (bool e : plan.excluded) active += e ? 0 : 1;
  EXPECT_GT(active, plan.excluded.size() / 2);
}

TEST(DigitalTester, IdealCodesAreCoherentTones) {
  const DigitalTester tester(cfg());
  const auto plan = tester.plan(DigitalTestOptions{});
  const auto codes = tester.ideal_codes(plan);
  ASSERT_EQ(codes.size(), plan.record);
  std::int64_t peak = 0;
  for (auto c : codes) peak = std::max<std::int64_t>(peak, std::llabs(c));
  // Composite peak near the requested 70 % of full scale.
  EXPECT_GT(peak, 1100);
  EXPECT_LE(peak, 2047);
}

TEST(DigitalTester, ExactCampaignDetectsMostFaults) {
  const DigitalTester tester(cfg());
  const auto plan = tester.plan(DigitalTestOptions{});
  const auto codes = tester.ideal_codes(plan);
  const auto faults = subsample(tester.faults(), 40);
  const auto r = tester.exact_campaign(codes, faults);
  EXPECT_EQ(r.total, faults.size());
  EXPECT_GT(r.coverage(), 0.7);
  EXPECT_LT(r.coverage(), 1.0);  // some faults need more patterns
}

TEST(DigitalTester, TwoToneBeatsSingleTone) {
  const DigitalTester tester(cfg());
  DigitalTestOptions one;
  one.num_tones = 1;
  DigitalTestOptions two;
  two.num_tones = 2;
  const auto faults = subsample(tester.faults(), 40);
  const auto r1 = tester.exact_campaign(tester.ideal_codes(tester.plan(one)), faults);
  const auto r2 = tester.exact_campaign(tester.ideal_codes(tester.plan(two)), faults);
  // Sec. 3: the two-tone exercises intermodulation behaviour and covers more.
  EXPECT_GE(r2.coverage(), r1.coverage());
}

TEST(DigitalTester, SpectralCampaignGoodCircuitStaysInsideMask) {
  const auto c = cfg();
  const DigitalTester tester(c);
  const auto plan = tester.plan(DigitalTestOptions{});
  const path::ReceiverPath path(c);
  stats::Rng rng(51);
  const auto noisy = tester.path_codes(plan, path, rng);
  const auto ideal = tester.ideal_codes(plan);
  const auto faults = subsample(tester.faults(), 200);
  const auto out = tester.spectral_campaign(plan, ideal, noisy, faults);
  EXPECT_FALSE(out.good_circuit_flagged);
  EXPECT_GT(out.result.coverage(), 0.4);
}

TEST(DigitalTester, SpectralCoverageBelowExactCoverage) {
  // Analog noise hides the weakest fault effects (sec. 5: 95.5 % exact
  // drops to ~80 % under the translated test).
  const auto c = cfg();
  const DigitalTester tester(c);
  const auto plan = tester.plan(DigitalTestOptions{});
  const path::ReceiverPath path(c);
  stats::Rng rng(52);
  const auto noisy = tester.path_codes(plan, path, rng);
  const auto ideal = tester.ideal_codes(plan);
  const auto faults = subsample(tester.faults(), 100);
  const auto exact = tester.exact_campaign(ideal, faults);
  const auto spectral = tester.spectral_campaign(plan, ideal, noisy, faults);
  EXPECT_LE(spectral.result.coverage(), exact.coverage() + 0.02);
}

TEST(DigitalTester, LargerMaskMarginLowersCoverage) {
  const auto c = cfg();
  const DigitalTester tester(c);
  const path::ReceiverPath path(c);
  const auto faults = subsample(tester.faults(), 200);

  DigitalTestOptions tight;
  tight.mask_margin_db = 6.0;
  DigitalTestOptions loose;
  loose.mask_margin_db = 25.0;

  const auto plan_t = tester.plan(tight);
  const auto plan_l = tester.plan(loose);
  stats::Rng r1(53), r2(53);
  const auto noisy_t = tester.path_codes(plan_t, path, r1);
  const auto noisy_l = tester.path_codes(plan_l, path, r2);
  const auto out_t =
      tester.spectral_campaign(plan_t, tester.ideal_codes(plan_t), noisy_t, faults);
  const auto out_l =
      tester.spectral_campaign(plan_l, tester.ideal_codes(plan_l), noisy_l, faults);
  // The paper's FCL-vs-YL trade: a looser mask loses coverage.
  EXPECT_GE(out_t.result.coverage(), out_l.result.coverage());
}

TEST(DigitalTester, PlanValidatesOptions) {
  const DigitalTester tester(cfg());
  DigitalTestOptions bad;
  bad.record = 500;  // not a power of two
  EXPECT_THROW(tester.plan(bad), std::invalid_argument);
  DigitalTestOptions zero;
  zero.num_tones = 0;
  EXPECT_THROW(tester.plan(zero), std::invalid_argument);
  DigitalTestOptions fs;
  fs.adc_fullscale_fraction = 1.5;
  EXPECT_THROW(tester.plan(fs), std::invalid_argument);
}

TEST(DigitalTester, OutputVoltsScalesLikeReceiverPath) {
  const auto c = cfg();
  const DigitalTester tester(c);
  const std::vector<std::int64_t> raw = {1 << c.fir_coeff_frac_bits};
  const auto v = tester.output_volts(raw);
  const double lsb = 2.0 * c.adc.vref / 4096.0;
  EXPECT_NEAR(v[0], lsb, 1e-12);
}

}  // namespace
}  // namespace msts::core
