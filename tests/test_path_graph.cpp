// Tests for the composable path-graph layer (path/path_graph.h): the
// centralized construction-time validation rules, canonical graph
// derivation, composition of non-canonical topologies, and the runtime
// contracts (workspace identity, volts conversion, from_stages checks).
// The bit-identity of the graph walk against ReceiverPath::run is covered
// by the differential pair in src/check (test_differential.cpp).
#include "path/path_graph.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "dsp/tonegen.h"
#include "path/receiver_path.h"

namespace msts::path {
namespace {

analog::Signal rf_tone(const PathGraphConfig& g, double freq, double amp,
                       std::size_t digital_n) {
  const dsp::Tone t{freq, amp, 0.0};
  analog::Signal s;
  s.fs = g.analog_fs;
  s.samples =
      dsp::generate_tones(std::span(&t, 1), 0.0, g.analog_fs,
                          digital_n * g.adc_decimation());
  return s;
}

// ---------------------------------------------------------------------------
// Flat PathConfig validation (centralized construction-time rules)
// ---------------------------------------------------------------------------

TEST(PathConfigValidation, ReferenceConfigIsValid) {
  EXPECT_NO_THROW(validate(reference_path_config()));
}

TEST(PathConfigValidation, RejectsNonPositiveOrNonFiniteAnalogFs) {
  for (const double bad : {0.0, -1.0e6, std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    PathConfig c = reference_path_config();
    c.analog_fs = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
    EXPECT_THROW(ReceiverPath{c}, std::invalid_argument) << bad;
  }
}

TEST(PathConfigValidation, RejectsZeroDecimation) {
  PathConfig c = reference_path_config();
  c.adc_decimation = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(PathConfigValidation, RejectsEvenZeroOrTooShortFirTaps) {
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                                std::size_t{16}}) {
    PathConfig c = reference_path_config();
    c.fir_taps = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
    EXPECT_THROW(ReceiverPath{c}, std::invalid_argument) << bad;
  }
}

TEST(PathConfigValidation, RejectsFirCutoffOutsideOpenInterval) {
  for (const double bad : {0.0, -0.1, 0.5, 0.7}) {
    PathConfig c = reference_path_config();
    c.fir_cutoff_norm = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
  }
}

TEST(PathConfigValidation, RejectsFracBitsOutsideInt32Budget) {
  for (const int bad : {0, -3, 31, 64}) {
    PathConfig c = reference_path_config();
    c.fir_coeff_frac_bits = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
  }
}

TEST(PathConfigValidation, RejectsAdcBitsOutsideFilterBudget) {
  for (const int bad : {0, 1, 25, 40}) {
    PathConfig c = reference_path_config();
    c.adc.bits = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
  }
}

TEST(PathConfigValidation, RejectsOddOrNonPositiveLpfOrder) {
  for (const int bad : {0, -2, 3, 5}) {
    PathConfig c = reference_path_config();
    c.lpf.order = bad;
    EXPECT_THROW(validate(c), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Structural graph validation
// ---------------------------------------------------------------------------

PathGraphConfig canonical_graph() {
  return graph_from_config(reference_path_config());
}

TEST(PathGraphValidation, CanonicalGraphIsValidAndOrdered) {
  const PathGraphConfig g = canonical_graph();
  EXPECT_NO_THROW(validate(g));
  ASSERT_EQ(g.blocks.size(), 5u);
  EXPECT_EQ(g.blocks[0].kind, BlockKind::kAmp);
  EXPECT_EQ(g.blocks[1].kind, BlockKind::kMixer);
  EXPECT_EQ(g.blocks[2].kind, BlockKind::kLpf);
  EXPECT_EQ(g.blocks[3].kind, BlockKind::kAdc);
  EXPECT_EQ(g.blocks[4].kind, BlockKind::kFir);
  EXPECT_EQ(g.index_of(BlockKind::kAdc), std::optional<std::size_t>{3});
  EXPECT_EQ(g.count(BlockKind::kLpf), 1u);
  EXPECT_EQ(g.adc_decimation(), 8u);
  EXPECT_DOUBLE_EQ(g.digital_fs(), 4.0e6);
}

TEST(PathGraphValidation, RejectsEmptyGraph) {
  PathGraphConfig g = canonical_graph();
  g.blocks.clear();
  EXPECT_THROW(validate(g), std::invalid_argument);
}

TEST(PathGraphValidation, RequiresExactlyOneAdc) {
  PathGraphConfig none = canonical_graph();
  none.blocks.erase(none.blocks.begin() + 3);
  none.blocks.pop_back();  // the FIR would dangle without the ADC anyway
  EXPECT_THROW(validate(none), std::invalid_argument);

  PathGraphConfig two = canonical_graph();
  two.blocks.insert(two.blocks.begin() + 3, two.blocks[3]);
  EXPECT_THROW(validate(two), std::invalid_argument);
}

TEST(PathGraphValidation, RejectsAnalogBlocksBehindTheAdc) {
  PathGraphConfig g = canonical_graph();
  std::swap(g.blocks[2], g.blocks[3]);  // lpf behind the adc
  EXPECT_THROW(validate(g), std::invalid_argument);
}

TEST(PathGraphValidation, RejectsFirInFrontOfTheAdcOrRepeated) {
  PathGraphConfig front = canonical_graph();
  std::swap(front.blocks[3], front.blocks[4]);  // fir before the adc
  EXPECT_THROW(validate(front), std::invalid_argument);

  PathGraphConfig twice = canonical_graph();
  twice.blocks.push_back(twice.blocks[4]);
  EXPECT_THROW(validate(twice), std::invalid_argument);
}

TEST(PathGraphValidation, PerBlockRulesApplyInsideTheGraph) {
  PathGraphConfig g = canonical_graph();
  g.blocks[4].fir_taps = 12;  // even
  EXPECT_THROW(validate(g), std::invalid_argument);

  g = canonical_graph();
  g.blocks[3].adc_decimation = 0;
  EXPECT_THROW(validate(g), std::invalid_argument);

  g = canonical_graph();
  g.blocks[2].lpf.order = 3;
  EXPECT_THROW(validate(g), std::invalid_argument);

  g = canonical_graph();
  g.analog_fs = -1.0;
  EXPECT_THROW(validate(g), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Composition and runtime
// ---------------------------------------------------------------------------

TEST(PathGraph, NominalRunHasConsistentDimensions) {
  const PathGraphConfig cfg = canonical_graph();
  const PathGraph g(cfg);
  stats::Rng rng(1);
  const auto trace = g.run(rf_tone(cfg, 10.5e6, 1e-3, 1024), rng);
  ASSERT_EQ(trace.analog_stages.size(), 3u);  // amp, mixer, lpf outputs
  EXPECT_EQ(trace.analog_stages[0].size(), 1024u * cfg.adc_decimation());
  EXPECT_EQ(trace.adc_codes.size(), 1024u);
  EXPECT_EQ(trace.filter_out.size(), 1024u);
  EXPECT_DOUBLE_EQ(trace.digital_fs, 4.0e6);
}

TEST(PathGraph, NonCanonicalTopologiesComposeAndRun) {
  const PathConfig base = reference_path_config();
  // Amp at IF: same block multiset as canonical, different arrangement.
  PathGraphConfig if_amp;
  if_amp.analog_fs = base.analog_fs;
  if_amp.blocks = {BlockConfig::make_mixer(base.mixer, base.lo),
                   BlockConfig::make_amp(base.amp),
                   BlockConfig::make_lpf(base.lpf),
                   BlockConfig::make_adc(base.adc, base.adc_decimation),
                   BlockConfig::make_fir(base.fir_taps, base.fir_cutoff_norm,
                                         base.fir_coeff_frac_bits)};
  // Passive front end, no digital filter.
  PathGraphConfig no_amp;
  no_amp.analog_fs = base.analog_fs;
  no_amp.blocks = {BlockConfig::make_mixer(base.mixer, base.lo),
                   BlockConfig::make_lpf(base.lpf),
                   BlockConfig::make_adc(base.adc, base.adc_decimation)};

  for (const PathGraphConfig& cfg : {if_amp, no_amp}) {
    const PathGraph g(cfg);
    stats::Rng rng(2);
    const auto trace = g.run(rf_tone(cfg, 10.5e6, 1e-3, 512), rng);
    EXPECT_EQ(trace.adc_codes.size(), 512u);
    const auto volts = g.output_volts(trace);
    if (cfg.count(BlockKind::kFir) == 0) {
      EXPECT_TRUE(trace.filter_out.empty());
      EXPECT_EQ(volts.size(), trace.adc_codes.size());
      EXPECT_DOUBLE_EQ(g.fir_magnitude_at(0.4e6), 1.0);
    } else {
      EXPECT_EQ(volts.size(), trace.filter_out.size());
    }
    // The tone got through: some code is nonzero.
    bool nonzero = false;
    for (const std::int64_t c : trace.adc_codes) nonzero |= (c != 0);
    EXPECT_TRUE(nonzero);
  }
}

TEST(PathGraph, WorkspaceRunIsBitIdenticalToAllocatingRun) {
  const PathGraphConfig cfg = canonical_graph();
  const PathGraph g(cfg);
  const auto rf = rf_tone(cfg, 10.4e6, 1e-3, 512);

  stats::Rng rng_a(42);
  const auto fresh = g.run(rf, rng_a);

  GraphWorkspace ws;
  for (int round = 0; round < 3; ++round) {
    stats::Rng rng_b(42);
    const auto& reused = g.run(rf, rng_b, ws);
    ASSERT_EQ(reused.adc_codes, fresh.adc_codes) << "round " << round;
    ASSERT_EQ(reused.filter_out, fresh.filter_out) << "round " << round;
    for (std::size_t s = 0; s < fresh.analog_stages.size(); ++s) {
      ASSERT_EQ(reused.analog_stages[s].samples, fresh.analog_stages[s].samples)
          << "round " << round << " stage " << s;
    }
  }
}

TEST(PathGraph, OutputVoltsIntoMatchesValueForm) {
  const PathGraphConfig cfg = canonical_graph();
  const PathGraph g(cfg);
  stats::Rng rng(3);
  const auto trace = g.run(rf_tone(cfg, 10.4e6, 1e-3, 256), rng);
  const auto by_value = g.output_volts(trace);
  std::vector<double> into(7, -99.0);
  g.output_volts_into(trace, into);
  EXPECT_EQ(into, by_value);
}

TEST(PathGraph, SampledIsDeterministicPerSeed) {
  const PathGraphConfig cfg = canonical_graph();
  stats::Rng mc_a(9), mc_b(9), mc_c(10);
  const PathGraph a = PathGraph::sampled(cfg, mc_a);
  const PathGraph b = PathGraph::sampled(cfg, mc_b);
  const PathGraph c = PathGraph::sampled(cfg, mc_c);

  const auto rf = rf_tone(cfg, 10.4e6, 1e-3, 256);
  stats::Rng na(5), nb(5), nc(5);
  const auto ta = a.run(rf, na);
  const auto tb = b.run(rf, nb);
  const auto tc = c.run(rf, nc);
  EXPECT_EQ(ta.filter_out, tb.filter_out);
  EXPECT_NE(ta.filter_out, tc.filter_out);
}

TEST(PathGraph, RejectsWrongSampleRateAndMismatchedStages) {
  const PathGraphConfig cfg = canonical_graph();
  const PathGraph g(cfg);
  stats::Rng rng(1);
  analog::Signal bad;
  bad.fs = 1.0e6;
  bad.samples.assign(64, 0.0);
  EXPECT_THROW(g.run(bad, rng), std::invalid_argument);

  // from_stages is kind-checked against the block list.
  std::vector<PathGraph::Stage> too_few;
  too_few.emplace_back(analog::Amplifier(cfg.blocks[0].amp));
  EXPECT_THROW(PathGraph::from_stages(cfg, std::move(too_few)),
               std::invalid_argument);

  std::vector<PathGraph::Stage> wrong_kind;
  wrong_kind.emplace_back(analog::LowPassFilter(cfg.blocks[2].lpf));  // not an amp
  wrong_kind.emplace_back(PathGraph::MixerStage{
      analog::Mixer(cfg.blocks[1].mixer), analog::LocalOscillator(cfg.blocks[1].lo)});
  wrong_kind.emplace_back(analog::LowPassFilter(cfg.blocks[2].lpf));
  wrong_kind.emplace_back(
      PathGraph::AdcStage{analog::Adc(cfg.blocks[3].adc), cfg.blocks[3].adc_decimation});
  wrong_kind.emplace_back(PathGraph::FirStage{{1, 2, 1}, 10, 12});
  EXPECT_THROW(PathGraph::from_stages(cfg, std::move(wrong_kind)),
               std::invalid_argument);
}

TEST(PathGraph, ReceiverPathExposesItsGraph) {
  const ReceiverPath p(reference_path_config());
  EXPECT_EQ(p.graph().size(), 5u);
  EXPECT_EQ(p.graph().kind_at(0), BlockKind::kAmp);
  EXPECT_EQ(p.graph().kind_at(4), BlockKind::kFir);
  EXPECT_EQ(p.fir_coeffs().size(), p.graph().fir_at(4).coeffs.size());
}

}  // namespace
}  // namespace msts::path
