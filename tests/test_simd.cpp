// Tests for the portable SIMD layer (base/simd.h): backend dispatch and
// override plumbing, per-backend kernel-table invariants, the forced-scalar
// vs native drift contracts, and thread-count independence of the
// Monte-Carlo reduction with vector kernels active. The binary carries the
// ctest label "simd" so the forced-scalar tier-1 leg can rerun exactly the
// SIMD-sensitive suites (see ROADMAP.md).
#include "base/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "digital/fault_sim.h"
#include "digital/faults.h"
#include "digital/netlist.h"
#include "dsp/oscillator.h"
#include "dsp/tonegen.h"
#include "stats/rng.h"
#include "stats/yield.h"

namespace msts {
namespace {

using simd::Isa;

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatch, IsaNamesRoundTripThroughParse) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    EXPECT_EQ(simd::parse_isa(simd::isa_name(isa)), isa);
  }
}

TEST(SimdDispatch, ParseRejectsUnknownNames) {
  EXPECT_THROW(simd::parse_isa("sse9"), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa("AVX2"), std::invalid_argument);  // case-exact
  // Empty / auto / native all mean "widest compiled backend this CPU runs".
  EXPECT_EQ(simd::parse_isa(""), simd::parse_isa("auto"));
  EXPECT_EQ(simd::parse_isa(nullptr), simd::parse_isa("native"));
}

TEST(SimdDispatch, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(simd::isa_compiled(Isa::kScalar));
  EXPECT_TRUE(simd::isa_supported(Isa::kScalar));
}

TEST(SimdDispatch, ActiveBackendIsCompiledAndSupported) {
  const Isa isa = simd::active_isa();
  EXPECT_TRUE(simd::isa_compiled(isa));
  EXPECT_TRUE(simd::isa_supported(isa));
  EXPECT_EQ(simd::kernels().isa, isa);
}

TEST(SimdDispatch, KernelTableWidthsAreConsistent) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (!simd::isa_compiled(isa)) continue;
    const simd::Kernels& k = simd::kernels_for(isa);
    EXPECT_EQ(k.isa, isa);
    EXPECT_TRUE(k.f64_width == 1 || k.f64_width == 2 || k.f64_width == 4 ||
                k.f64_width == 8)
        << simd::isa_name(isa);
    EXPECT_EQ(k.fault_words, k.f64_width);
    // The scalar backend keeps the legacy 4-lane add_cosine; vector backends
    // run two phasor vectors of W lanes each.
    EXPECT_EQ(k.cosine_lanes, k.f64_width == 1 ? 4u : 2 * k.f64_width);
    EXPECT_NE(k.apply_window, nullptr);
    EXPECT_NE(k.fft_pass, nullptr);
    EXPECT_NE(k.rfft_combine, nullptr);
    EXPECT_NE(k.add_cosine, nullptr);
    EXPECT_NE(k.biquad_ff, nullptr);
    EXPECT_NE(k.fir_dot, nullptr);
    EXPECT_NE(k.fault_eval, nullptr);
  }
}

TEST(SimdDispatch, ScopedIsaForcesAndRestores) {
  const Isa before = simd::active_isa();
  {
    simd::ScopedIsa scalar(Isa::kScalar);
    EXPECT_EQ(simd::active_isa(), Isa::kScalar);
    EXPECT_EQ(simd::kernels().f64_width, 1u);
  }
  EXPECT_EQ(simd::active_isa(), before);
}

// ---------------------------------------------------------------------------
// Forced-scalar vs native drift contracts
// ---------------------------------------------------------------------------

TEST(SimdDrift, AddCosineNativeVsScalarOverMillionSamples) {
  // Both backends reseed from the same double-double carrier every
  // dsp::kResyncPeriod samples, so the gap never accumulates past ~1 ulp of
  // the amplitude even over a million samples.
  constexpr std::size_t kN = 1u << 20;
  const double omega = 2.0 * 3.14159265358979 * 0.1234567;
  const double phase = 0.321;
  const double amp = 0.5;
  std::vector<double> native(kN, 0.0);
  dsp::add_cosine(native.data(), kN, omega, phase, amp);
  std::vector<double> scalar(kN, 0.0);
  {
    simd::ScopedIsa forced(Isa::kScalar);
    dsp::add_cosine(scalar.data(), kN, omega, phase, amp);
  }
  double max_abs = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    max_abs = std::max(max_abs, std::abs(native[i] - scalar[i]));
  }
  EXPECT_LE(max_abs, 1e-12);
}

TEST(SimdDrift, PhasorOscillatorIdenticalUnderForcedScalar) {
  // The streaming LO phasor is plain scalar code on every backend; forcing
  // the ISA must not change a single bit of its output.
  const double omega = 0.05;
  dsp::PhasorOscillator native_osc(omega, 0.1);
  std::vector<double> native;
  for (int i = 0; i < 4096; ++i) native.push_back(native_osc.cos_next());
  simd::ScopedIsa forced(Isa::kScalar);
  dsp::PhasorOscillator scalar_osc(omega, 0.1);
  for (int i = 0; i < 4096; ++i) {
    const double v = scalar_osc.cos_next();
    EXPECT_EQ(std::memcmp(&v, &native[static_cast<std::size_t>(i)], sizeof v), 0)
        << "sample " << i;
  }
}

// ---------------------------------------------------------------------------
// Thread-count independence with vector kernels active
// ---------------------------------------------------------------------------

TEST(SimdParallel, McEvaluationBitIdenticalAcrossThreadCounts) {
  // The Monte-Carlo reduction partitions trials deterministically; with the
  // SIMD backends active underneath (spectrum, transient, fault kernels all
  // dispatch) the outcome must still be a pure function of the seed, not of
  // the thread count.
  const stats::Normal param{0.0, 1.0};
  const auto spec = stats::SpecLimits::window(-1.8, 1.8);
  const auto threshold = spec.tightened(0.12);
  const auto error = stats::ErrorModel::gaussian(0.05);
  constexpr int kTrials = 60000;

  auto run = [&](int threads) {
    stats::Rng rng(0x51D5EEDull);
    return stats::evaluate_test_mc(param, spec, threshold, error, rng, kTrials,
                                   threads);
  };
  const stats::TestOutcome one = run(1);
  for (const int threads : {2, 8}) {
    const stats::TestOutcome many = run(threads);
    EXPECT_EQ(std::memcmp(&many.yield, &one.yield, sizeof(double)), 0) << threads;
    EXPECT_EQ(std::memcmp(&many.accept_rate, &one.accept_rate, sizeof(double)), 0)
        << threads;
    EXPECT_EQ(std::memcmp(&many.yield_loss, &one.yield_loss, sizeof(double)), 0)
        << threads;
    EXPECT_EQ(
        std::memcmp(&many.fault_coverage_loss, &one.fault_coverage_loss, sizeof(double)),
        0)
        << threads;
  }
}

TEST(SimdParallel, FaultCampaignBitIdenticalAcrossThreadCounts) {
  // Wide-word batches split across worker threads must land the exact same
  // verdicts as the serial sweep (the batch partition is fixed).
  digital::Netlist nl;
  digital::Bus in, out;
  stats::Rng rng(77);
  std::vector<digital::NetId> pool;
  for (int i = 0; i < 5; ++i) {
    const digital::NetId n = nl.add_input("i" + std::to_string(i));
    in.bits.push_back(n);
    pool.push_back(n);
  }
  const digital::GateType kinds[] = {digital::GateType::kAnd, digital::GateType::kOr,
                                     digital::GateType::kXor, digital::GateType::kNand};
  for (int g = 0; g < 120; ++g) {
    if (rng.uniform() < 0.1) {
      pool.push_back(nl.add_dff(pool[rng.uniform_int(pool.size())]));
      continue;
    }
    pool.push_back(nl.add_gate(kinds[rng.uniform_int(4)],
                               pool[rng.uniform_int(pool.size())],
                               pool[rng.uniform_int(pool.size())]));
  }
  for (int o = 0; o < 3; ++o) {
    const digital::NetId n = pool[pool.size() - 1 - static_cast<std::size_t>(o)];
    nl.mark_output(n);
    out.bits.push_back(n);
  }
  std::vector<std::int64_t> stim;
  for (int c = 0; c < 48; ++c) {
    stim.push_back(static_cast<std::int64_t>(rng.uniform_int(32)) - 16);
  }
  const auto faults = digital::collapsed_faults(nl);

  auto run = [&](int threads) {
    digital::FaultSimOptions fo;
    fo.threads = threads;
    return digital::simulate_faults(nl, in, out, stim, faults, fo);
  };
  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.detected.size(), serial.detected.size()) << threads;
    for (std::size_t f = 0; f < serial.detected.size(); ++f) {
      EXPECT_EQ(parallel.detected[f], serial.detected[f])
          << "fault " << f << " threads " << threads;
    }
    EXPECT_EQ(parallel.good_waveform, serial.good_waveform) << threads;
  }
}

}  // namespace
}  // namespace msts
