// Tests for the gate-level FIR generator (digital/fir.h): the netlist must
// agree bit-for-bit with the int64 reference model, including the paper's
// 13-tap and 16-tap low-pass configurations.
#include "digital/fir.h"

#include <gtest/gtest.h>

#include "base/units.h"
#include "digital/fault_sim.h"
#include "dsp/fir_design.h"
#include "stats/rng.h"

namespace msts::digital {
namespace {

std::vector<std::int64_t> random_samples(int width, std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  const std::int64_t hi = (1ll << (width - 1));
  std::vector<std::int64_t> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(static_cast<std::int64_t>(rng.uniform_int(2 * hi)) - hi);
  }
  return xs;
}

void expect_netlist_matches_model(const FirCircuit& fir,
                                  std::span<const std::int64_t> stimulus) {
  FirModel model(fir.coeffs, fir.input_width);
  ParallelSimulator sim(fir.netlist);
  for (std::size_t i = 0; i < stimulus.size(); ++i) {
    sim.set_bus(fir.input, stimulus[i]);
    sim.eval();
    const std::int64_t expected = model.step(stimulus[i]);
    ASSERT_EQ(sim.bus_value(fir.output, 0), expected) << "cycle " << i;
    sim.clock();
  }
}

TEST(FirCircuit, TrivialOneTapIsAConstantMultiplier) {
  const std::int32_t coeffs[] = {37};
  const FirCircuit fir = build_fir(coeffs, 8, 0);
  ParallelSimulator sim(fir.netlist);
  for (std::int64_t v = -128; v < 128; v += 5) {
    sim.set_bus(fir.input, v);
    sim.eval();
    EXPECT_EQ(sim.bus_value(fir.output, 0), 37 * v);
  }
}

TEST(FirCircuit, MovingAverageMatchesModel) {
  const std::int32_t coeffs[] = {1, 1, 1, 1};
  const FirCircuit fir = build_fir(coeffs, 6, 0);
  const auto xs = random_samples(6, 200, 11);
  expect_netlist_matches_model(fir, xs);
}

TEST(FirCircuit, NegativeCoefficientsMatchModel) {
  const std::int32_t coeffs[] = {-3, 7, -11, 5, -2};
  const FirCircuit fir = build_fir(coeffs, 8, 0);
  const auto xs = random_samples(8, 300, 13);
  expect_netlist_matches_model(fir, xs);
}

class PaperFilters : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaperFilters, DesignedLowpassNetlistMatchesModel) {
  const std::size_t taps = GetParam();
  const auto h = dsp::design_lowpass(taps, 0.125);
  const auto q = dsp::quantize_coefficients(h, 10);
  const FirCircuit fir = build_fir(q, 12, 10);
  EXPECT_EQ(fir.netlist.dffs().size(), (taps - 1) * 12);
  const auto xs = random_samples(12, 256, 17);
  expect_netlist_matches_model(fir, xs);
}

INSTANTIATE_TEST_SUITE_P(TapCounts, PaperFilters, ::testing::Values<std::size_t>(13, 16));

TEST(FirCircuit, ImpulseResponseIsTheCoefficients) {
  const std::int32_t coeffs[] = {4, -9, 2, 15, -1};
  const FirCircuit fir = build_fir(coeffs, 8, 0);
  std::vector<std::int64_t> impulse(8, 0);
  impulse[0] = 1;
  FirModel model(coeffs, 8);
  const auto y = model.run(impulse);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(y[k], coeffs[k]) << "tap " << k;
  }
  EXPECT_EQ(y[5], 0);
}

TEST(FirCircuit, ExplicitBranchVersionIsFunctionallyIdentical) {
  const auto h = dsp::design_lowpass(13, 0.125);
  const auto q = dsp::quantize_coefficients(h, 8);
  const FirCircuit fir = build_fir(q, 8, 8);
  const Netlist expanded = fir.netlist.with_explicit_branches();

  // I/O nets keep their order under the transform.
  Bus ein;
  for (std::size_t i = 0; i < fir.input.width(); ++i) {
    ein.bits.push_back(expanded.inputs()[i]);
  }
  Bus eout;
  for (std::size_t i = 0; i < fir.output.width(); ++i) {
    eout.bits.push_back(expanded.outputs()[i]);
  }

  const auto xs = random_samples(8, 128, 23);
  const auto y_orig = simulate_good(fir.netlist, fir.input, fir.output, xs);
  const auto y_exp = simulate_good(expanded, ein, eout, xs);
  ASSERT_EQ(y_orig.size(), y_exp.size());
  for (std::size_t i = 0; i < y_orig.size(); ++i) {
    ASSERT_EQ(y_orig[i], y_exp[i]) << "cycle " << i;
  }
}

TEST(FirModel, ResetClearsDelayLine) {
  const std::int32_t coeffs[] = {1, 2, 3};
  FirModel model(coeffs, 8);
  model.step(10);
  model.step(20);
  model.reset();
  EXPECT_EQ(model.step(1), 1);  // no history left
}

TEST(FirModel, RejectsOutOfRangeInput) {
  const std::int32_t coeffs[] = {1};
  FirModel model(coeffs, 8);
  EXPECT_THROW(model.step(128), std::invalid_argument);
  EXPECT_THROW(model.step(-129), std::invalid_argument);
  EXPECT_NO_THROW(model.step(127));
  EXPECT_NO_THROW(model.step(-128));
}

TEST(ClampToWidth, Saturates) {
  EXPECT_EQ(clamp_to_width(300, 8), 127);
  EXPECT_EQ(clamp_to_width(-300, 8), -128);
  EXPECT_EQ(clamp_to_width(5, 8), 5);
}

TEST(FirCircuit, RejectsBadParameters) {
  const std::int32_t coeffs[] = {1};
  EXPECT_THROW(build_fir({}, 8, 0), std::invalid_argument);
  EXPECT_THROW(build_fir(coeffs, 1, 0), std::invalid_argument);
  EXPECT_THROW(build_fir(coeffs, 30, 0), std::invalid_argument);
}

}  // namespace
}  // namespace msts::digital
