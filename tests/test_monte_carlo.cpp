// Tests for the Monte-Carlo driver and summary statistics
// (stats/monte_carlo.h).
#include "stats/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

namespace msts::stats {
namespace {

TEST(Summarize, KnownSample) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Summarize, PercentilesInterpolate) {
  const auto s = summarize({0.0, 1.0});
  EXPECT_DOUBLE_EQ(s.median, 0.5);
  EXPECT_DOUBLE_EQ(s.p05, 0.05);
  EXPECT_DOUBLE_EQ(s.p95, 0.95);
}

TEST(Summarize, SingleValue) {
  const auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p05, 7.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(RunTrials, ProducesRequestedCount) {
  Rng rng(5);
  const auto sample = run_trials(1000, rng, [](Rng& r) { return r.uniform(); });
  EXPECT_EQ(sample.size(), 1000u);
  const auto s = summarize(sample);
  EXPECT_NEAR(s.mean, 0.5, 0.05);
  EXPECT_NEAR(s.stddev, std::sqrt(1.0 / 12.0), 0.02);
}

TEST(RunTrials, GaussianSampleSummary) {
  Rng rng(6);
  const auto sample =
      run_trials(20000, rng, [](Rng& r) { return r.normal(10.0, 2.0); });
  const auto s = summarize(sample);
  EXPECT_NEAR(s.mean, 10.0, 0.1);
  EXPECT_NEAR(s.stddev, 2.0, 0.1);
  // 5th/95th percentiles of N(10, 2) are 10 ± 1.645*2.
  EXPECT_NEAR(s.p05, 10.0 - 3.29, 0.15);
  EXPECT_NEAR(s.p95, 10.0 + 3.29, 0.15);
}

TEST(RunTrials, RejectsZeroTrials) {
  Rng rng(7);
  EXPECT_THROW(run_trials(0, rng, [](Rng&) { return 0.0; }), std::invalid_argument);
}

}  // namespace
}  // namespace msts::stats
