// Tests for spectral metrics (dsp/metrics.h): tone measurement, SNR, THD,
// SFDR, intermodulation detection — the primitives of every translated test.
#include "dsp/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/units.h"
#include "dsp/tonegen.h"
#include "stats/rng.h"

namespace msts::dsp {
namespace {

constexpr double kFs = 4e6;
constexpr std::size_t kN = 4096;

TEST(AliasFrequency, FoldsIntoFirstNyquistZone) {
  EXPECT_DOUBLE_EQ(alias_frequency(100.0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(alias_frequency(600.0, 1000.0), 400.0);   // fs - f
  EXPECT_DOUBLE_EQ(alias_frequency(1000.0, 1000.0), 0.0);    // at fs
  EXPECT_DOUBLE_EQ(alias_frequency(1100.0, 1000.0), 100.0);  // fs + f
  EXPECT_DOUBLE_EQ(alias_frequency(2400.0, 1000.0), 400.0);
  EXPECT_DOUBLE_EQ(alias_frequency(-100.0, 1000.0), 100.0);
}

TEST(MeasureTone, RecoversCleanTone) {
  const double f = coherent_frequency(kFs, kN, 300e3);
  const Tone tone{f, 1.2, 0.0};
  const auto x = generate_tones(std::span(&tone, 1), 0.0, kFs, kN);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  const auto m = measure_tone(s, f, "f1");
  EXPECT_NEAR(m.amplitude, 1.2, 0.01);
  EXPECT_NEAR(m.power, 1.2 * 1.2 / 2.0, 0.02);
  EXPECT_EQ(m.label, "f1");
  EXPECT_EQ(m.bin, s.nearest_bin(f));
}

TEST(MeasureTone, FindsSlightlyOffBinTone) {
  // 0.3-bin offset: the lobe-local peak search plus main-lobe integration
  // must still report the power within a fraction of a dB.
  const double bw = kFs / static_cast<double>(kN);
  const double f = coherent_frequency(kFs, kN, 300e3) + 0.3 * bw;
  const Tone tone{f, 1.0, 0.0};
  const auto x = generate_tones(std::span(&tone, 1), 0.0, kFs, kN);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  const auto m = measure_tone(s, f);
  EXPECT_NEAR(m.power_db, db_from_power_ratio(0.5), 0.5);
}

TEST(AnalyzeSpectrum, SnrMatchesInjectedNoise) {
  stats::Rng rng(42);
  const double f = coherent_frequency(kFs, kN, 300e3);
  const double amp = 1.0;
  const double noise_sigma = 1e-3;
  Tone tone{f, amp, 0.0};
  auto x = generate_tones(std::span(&tone, 1), 0.0, kFs, kN);
  for (double& v : x) v += rng.normal(0.0, noise_sigma);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  AnalysisOptions opts;
  opts.fundamentals = {f};
  const auto r = analyze_spectrum(s, opts);
  const double expected_snr =
      db_from_power_ratio((amp * amp / 2.0) / (noise_sigma * noise_sigma));
  EXPECT_NEAR(r.snr_db, expected_snr, 1.0);
  EXPECT_NEAR(r.signal_power, amp * amp / 2.0, 0.02);
}

TEST(AnalyzeSpectrum, ThdPicksUpHarmonics) {
  const double f = coherent_frequency(kFs, kN, 200e3);
  // Fundamental plus an explicit -40 dBc 3rd harmonic.
  const Tone tones[] = {{f, 1.0, 0.0}, {3.0 * f, 0.01, 0.3}};
  const auto x = generate_tones(tones, 0.0, kFs, kN);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  AnalysisOptions opts;
  opts.fundamentals = {f};
  const auto r = analyze_spectrum(s, opts);
  EXPECT_NEAR(r.thd_db, -40.0, 0.5);
  ASSERT_FALSE(r.harmonics.empty());
  // H3 should dominate the harmonic list.
  double h3 = -300.0;
  for (const auto& h : r.harmonics) {
    if (h.label.find("H3") != std::string::npos) h3 = std::max(h3, h.power_db);
  }
  EXPECT_NEAR(h3, db_from_power_ratio(0.01 * 0.01 / 2.0), 0.5);
}

TEST(AnalyzeSpectrum, SfdrSeesWorstSpur) {
  const double f = coherent_frequency(kFs, kN, 250e3);
  const double spur_f = coherent_frequency(kFs, kN, 800e3);
  const Tone tones[] = {{f, 1.0, 0.0}, {spur_f, 0.001, 0.0}};  // -60 dBc spur
  const auto x = generate_tones(tones, 0.0, kFs, kN);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  AnalysisOptions opts;
  opts.fundamentals = {f};
  opts.num_harmonics = 2;  // keep the spur out of the harmonic list
  const auto r = analyze_spectrum(s, opts);
  EXPECT_NEAR(r.sfdr_db, 60.0, 1.0);
}

TEST(AnalyzeSpectrum, TwoToneCubicNonlinearityShowsIm3) {
  // Pass a two-tone through y = x + a3 x^3 and check IM3 products appear at
  // the right bins with the right level (a3 * 3/4 * A^3 each).
  const auto freqs = place_test_tones(kFs, kN, 100e3, 900e3, 2);
  const double amp = 0.5;
  const Tone tones[] = {{freqs[0], amp, 0.0}, {freqs[1], amp, 0.0}};
  auto x = generate_tones(tones, 0.0, kFs, kN);
  const double a3 = 0.02;
  for (double& v : x) v = v + a3 * v * v * v;
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  AnalysisOptions opts;
  opts.fundamentals = {freqs[0], freqs[1]};
  const auto r = analyze_spectrum(s, opts);
  const double im3_amp = 0.75 * a3 * amp * amp * amp;
  double measured = -300.0;
  for (const auto& im : r.intermods) {
    if (im.label.rfind("IM3", 0) == 0) measured = std::max(measured, im.power_db);
  }
  EXPECT_NEAR(measured, db_from_power_ratio(im3_amp * im3_amp / 2.0), 1.0);
}

TEST(AnalyzeSpectrum, DcLevelReported) {
  const double f = coherent_frequency(kFs, kN, 300e3);
  const Tone tone{f, 1.0, 0.0};
  const auto x = generate_tones(std::span(&tone, 1), -0.15, kFs, kN);
  const Spectrum s(x, kFs, WindowType::kBlackmanHarris4);
  AnalysisOptions opts;
  opts.fundamentals = {f};
  const auto r = analyze_spectrum(s, opts);
  EXPECT_NEAR(r.dc_level, -0.15, 1e-3);
}

TEST(AnalyzeSpectrum, RequiresFundamentals) {
  const std::vector<double> x(256, 0.0);
  const Spectrum s(x, kFs, WindowType::kHann);
  EXPECT_THROW(analyze_spectrum(s, AnalysisOptions{}), std::invalid_argument);
}

TEST(PowerDbSeries, HasOneEntryPerBin) {
  const std::vector<double> x(512, 0.0);
  const Spectrum s(x, kFs, WindowType::kHann);
  EXPECT_EQ(power_db_series(s).size(), s.num_bins());
}

}  // namespace
}  // namespace msts::dsp
