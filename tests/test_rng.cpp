// Tests for the deterministic PRNG (stats/rng.h).
#include "stats/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msts::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalTailsPlausible) {
  Rng rng(13);
  const int n = 100000;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.normal()) > 2.0) ++beyond2;
  }
  // P(|Z|>2) = 4.55 %.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.005);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // every bucket hit
  EXPECT_EQ(rng.uniform_int(0), 0u);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitChildOwnsThePreJumpSegment) {
  // split() hands the child the current position and jumps the parent past
  // it: the child must reproduce exactly what the un-split generator would
  // have produced.
  Rng a(33);
  Rng reference = a;
  Rng child = a.split();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(child.next_u64(), reference.next_u64()) << "diverged at " << i;
  }
}

TEST(Rng, JumpIsDeterministicAndMovesTheState) {
  Rng a(5), b(5), stay(5);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(5);
  c.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next_u64() == stay.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, JumpAndLongJumpReachDistinctStreams) {
  Rng j(5), lj(5);
  j.jump();
  lj.long_jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (j.next_u64() == lj.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, RepeatedSplitsArePairwiseDistinct) {
  // The old split() reseeded from one 64-bit draw, so distinct splits could
  // collide; jump-based splits occupy disjoint 2^128 segments by design.
  Rng root(77);
  std::vector<Rng> children;
  for (int i = 0; i < 8; ++i) children.push_back(root.split());
  std::vector<std::vector<std::uint64_t>> draws;
  for (auto& c : children) {
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 64; ++i) seq.push_back(c.next_u64());
    draws.push_back(seq);
  }
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      int same = 0;
      for (int k = 0; k < 64; ++k) {
        if (draws[i][k] == draws[j][k]) ++same;
      }
      EXPECT_EQ(same, 0) << "children " << i << " and " << j << " correlate";
    }
  }
}

TEST(Rng, JumpDropsTheCachedNormal) {
  // A deviate cached before the jump belongs to the old stream position and
  // must not leak into the new one. Copy a generator that holds a cached
  // deviate, drain only the copy's cache (cache hits do not touch the linear
  // state), and check the post-jump normals of both agree: jump() must leave
  // them at identical positions regardless of cache contents. The copy trick
  // keeps the test independent of how many uniforms one normal() consumes
  // (the polar method's rejection count varies with the stream).
  Rng cached(91);
  (void)cached.normal();  // caches the partner deviate of the pair
  Rng plain = cached;
  (void)plain.normal();  // served from the copied cache; state untouched
  cached.jump();
  plain.jump();
  EXPECT_EQ(cached.normal(), plain.normal());
  Rng cached2(91);
  (void)cached2.normal();
  Rng plain2 = cached2;
  (void)plain2.normal();
  Rng cached_child = cached2.split();
  Rng plain_child = plain2.split();
  EXPECT_EQ(cached_child.normal(), plain_child.normal());
}

}  // namespace
}  // namespace msts::stats
