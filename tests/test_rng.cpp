// Tests for the deterministic PRNG (stats/rng.h).
#include "stats/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace msts::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalTailsPlausible) {
  Rng rng(13);
  const int n = 100000;
  int beyond2 = 0;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.normal()) > 2.0) ++beyond2;
  }
  // P(|Z|>2) = 4.55 %.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.005);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // every bucket hit
  EXPECT_EQ(rng.uniform_int(0), 0u);
  EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace msts::stats
