// Tests for the PODEM ATPG and redundancy identification (digital/atpg.h).
#include "digital/atpg.h"

#include <gtest/gtest.h>

#include "digital/builder.h"
#include "digital/fault_sim.h"
#include "stats/rng.h"

namespace msts::digital {
namespace {

// Applies an ATPG vector to a (combinational) netlist with the fault in
// machine 1 and reports whether any output differs from the good machine.
bool vector_detects(const Netlist& nl, const std::vector<NetId>& pis,
                    const std::vector<bool>& vec, const Fault& fault) {
  ParallelSimulator sim(nl);
  sim.inject(fault, 1);
  for (std::size_t i = 0; i < pis.size(); ++i) sim.set_input(pis[i], vec[i]);
  sim.eval();
  for (NetId o : nl.outputs()) {
    if (sim.value_in_machine(o, 0) != sim.value_in_machine(o, 1)) return true;
  }
  return false;
}

TEST(Atpg, FindsVectorForAndGateFault) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, a, b);
  nl.mark_output(g);

  Atpg atpg(nl);
  const auto r = atpg.generate(Fault{g, false});  // output s-a-0
  ASSERT_EQ(r.status, AtpgStatus::kTestable);
  // The only test is a=1, b=1.
  EXPECT_TRUE(r.vector[0]);
  EXPECT_TRUE(r.vector[1]);
  EXPECT_TRUE(vector_detects(nl, atpg.controllable_nets(), r.vector, Fault{g, false}));
}

TEST(Atpg, PropagatesThroughChains) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId g1 = nl.add_gate(GateType::kAnd, a, b);
  const NetId g2 = nl.add_gate(GateType::kOr, g1, c);
  const NetId g3 = nl.add_gate(GateType::kXor, g2, a);
  nl.mark_output(g3);

  Atpg atpg(nl);
  for (const Fault f : {Fault{g1, false}, Fault{g1, true}, Fault{b, false},
                        Fault{c, true}}) {
    const auto r = atpg.generate(f);
    ASSERT_EQ(r.status, AtpgStatus::kTestable) << describe(nl, f);
    EXPECT_TRUE(vector_detects(nl, atpg.controllable_nets(), r.vector, f))
        << describe(nl, f);
  }
}

TEST(Atpg, ProvesClassicRedundancyUntestable) {
  // out = a OR (a AND b): the AND term is absorbed by a, so its s-a-0 is
  // redundant — no input combination can ever expose it.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, a, b);
  const NetId out = nl.add_gate(GateType::kOr, a, g);
  nl.mark_output(out);

  Atpg atpg(nl);
  EXPECT_EQ(atpg.generate(Fault{g, false}).status, AtpgStatus::kUntestable);
  // s-a-1 on the same net IS testable (a=0 exposes it).
  const auto r = atpg.generate(Fault{g, true});
  ASSERT_EQ(r.status, AtpgStatus::kTestable);
  EXPECT_TRUE(vector_detects(nl, atpg.controllable_nets(), r.vector, Fault{g, true}));
}

TEST(Atpg, DffBoundariesActAsTestAccess) {
  // Fault in the cone of a DFF's D pin: observable as a pseudo-PO; fault
  // behind a DFF output: controllable as a pseudo-PI.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g1 = nl.add_gate(GateType::kAnd, a, b);
  const NetId q = nl.add_dff(g1);
  const NetId g2 = nl.add_gate(GateType::kNot, q);
  nl.mark_output(g2);

  Atpg atpg(nl);
  EXPECT_EQ(atpg.generate(Fault{g1, false}).status, AtpgStatus::kTestable);
  EXPECT_EQ(atpg.generate(Fault{q, true}).status, AtpgStatus::kTestable);
}

class AtpgRandomCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtpgRandomCrossCheck, AgreesWithExhaustiveSimulation) {
  // Random 8-input combinational circuits: every ATPG verdict is checked
  // against ground truth — testable vectors must detect, and untestable
  // faults must survive all 256 exhaustive patterns.
  stats::Rng rng(GetParam());
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  const GateType kinds[] = {GateType::kAnd, GateType::kOr,  GateType::kNand,
                            GateType::kNor, GateType::kXor, GateType::kNot,
                            GateType::kBuf, GateType::kXnor};
  for (int g = 0; g < 60; ++g) {
    const GateType t = kinds[rng.uniform_int(8)];
    pool.push_back(nl.add_gate(t, pool[rng.uniform_int(pool.size())],
                               pool[rng.uniform_int(pool.size())]));
  }
  nl.mark_output(pool.back());
  nl.mark_output(pool[pool.size() - 2]);

  std::vector<std::int64_t> exhaustive;
  for (int v = 0; v < 256; ++v) exhaustive.push_back(v >= 128 ? v - 256 : v);
  Bus in;
  for (int i = 0; i < 8; ++i) in.bits.push_back(nl.inputs()[i]);
  Bus out;
  out.bits = nl.outputs();

  auto faults = collapsed_faults(nl);
  if (faults.size() > 60) faults.resize(60);
  const auto ground_truth = simulate_faults(nl, in, out, exhaustive, faults);

  Atpg atpg(nl, /*backtrack_limit=*/20000);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto r = atpg.generate(faults[i]);
    if (r.status == AtpgStatus::kTestable) {
      EXPECT_TRUE(ground_truth.detected[i])
          << describe(nl, faults[i]) << " seed " << GetParam();
      EXPECT_TRUE(vector_detects(nl, atpg.controllable_nets(), r.vector, faults[i]))
          << describe(nl, faults[i]) << " seed " << GetParam();
    } else if (r.status == AtpgStatus::kUntestable) {
      EXPECT_FALSE(ground_truth.detected[i])
          << describe(nl, faults[i]) << " wrongly proven redundant, seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtpgRandomCrossCheck,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55, 66));

TEST(Atpg, RejectsBadFault) {
  Netlist nl;
  nl.add_input("a");
  Atpg atpg(nl);
  EXPECT_THROW(atpg.generate(Fault{42, false}), std::invalid_argument);
}

TEST(Atpg, ClassifyReturnsOneVerdictPerFault) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, a, b);
  nl.mark_output(g);
  Atpg atpg(nl);
  const Fault faults[] = {Fault{g, false}, Fault{g, true}};
  const auto verdicts = atpg.classify(faults);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0], AtpgStatus::kTestable);
  EXPECT_EQ(verdicts[1], AtpgStatus::kTestable);
}

}  // namespace
}  // namespace msts::digital
