// Tests for the structural netlist (digital/netlist.h): construction,
// topological ordering, fanout bookkeeping and explicit-branch expansion.
#include "digital/netlist.h"

#include <gtest/gtest.h>

namespace msts::digital {
namespace {

TEST(Netlist, BuildsSimpleCombinational) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(GateType::kAnd, a, b, "g");
  nl.mark_output(g, "y");
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.gate(g).type, GateType::kAnd);
  EXPECT_EQ(nl.output_name(0), "y");
  EXPECT_EQ(nl.combinational_gate_count(), 1u);
}

TEST(Netlist, RejectsDanglingFanin) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kAnd, a, 99), std::invalid_argument);
  EXPECT_THROW(nl.add_dff(42), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(42), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kDff, a, 0), std::invalid_argument);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId n1 = nl.add_gate(GateType::kOr, a, b);
  const NetId n2 = nl.add_gate(GateType::kNot, n1);
  const NetId n3 = nl.add_gate(GateType::kXor, n2, a);
  nl.mark_output(n3);
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.num_nets());
  std::vector<std::size_t> pos(nl.num_nets());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[n1]);
  EXPECT_LT(pos[b], pos[n1]);
  EXPECT_LT(pos[n1], pos[n2]);
  EXPECT_LT(pos[n2], pos[n3]);
}

TEST(Netlist, DffChainIsLegalSequentialLogic) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId d = nl.add_gate(GateType::kNot, a);
  const NetId q = nl.add_dff(d);
  const NetId q2 = nl.add_dff(q);
  nl.mark_output(q2);
  EXPECT_NO_THROW(nl.topo_order());
  EXPECT_EQ(nl.dffs().size(), 2u);
}

TEST(Netlist, FanoutCountsIncludeOutputsAndDffs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_gate(GateType::kNot, a);
  nl.add_gate(GateType::kBuf, n1);
  nl.add_dff(n1);
  nl.mark_output(n1);
  const auto counts = nl.fanout_counts();
  EXPECT_EQ(counts[a], 1);
  EXPECT_EQ(counts[n1], 3);  // BUF pin + DFF D pin + primary output
}

TEST(Netlist, ExplicitBranchesInsertBuffersOnlyOnMultiFanout) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId stem = nl.add_gate(GateType::kAnd, a, b, "stem");
  const NetId u = nl.add_gate(GateType::kNot, stem, 0, "u");
  const NetId v = nl.add_gate(GateType::kBuf, stem, 0, "v");
  const NetId w = nl.add_gate(GateType::kOr, u, v, "w");
  nl.mark_output(w);

  const Netlist expanded = nl.with_explicit_branches();
  // stem drives two pins -> two branch buffers; u and v are fanout-free.
  EXPECT_EQ(expanded.num_nets(), nl.num_nets() + 2);
  EXPECT_EQ(expanded.inputs().size(), 2u);
  EXPECT_EQ(expanded.outputs().size(), 1u);
  // Every *functional* gate pin reads a fanout-free net; only the inserted
  // branch buffers (named "*.br*") may read a multi-fanout stem.
  const auto counts = expanded.fanout_counts();
  auto is_branch_buffer = [&](const Gate& g) {
    return g.type == GateType::kBuf && g.name.find(".br") != std::string::npos;
  };
  for (NetId id = 0; id < expanded.num_nets(); ++id) {
    const Gate& g = expanded.gate(id);
    if (is_branch_buffer(g)) continue;
    const int n = arity(g.type);
    if (n >= 1) {
      EXPECT_LE(counts[g.fanin0], 1) << "pin reads multi-fanout net " << g.fanin0;
    }
    if (n >= 2) {
      EXPECT_LE(counts[g.fanin1], 1);
    }
  }
}

TEST(Netlist, ExplicitBranchesPreserveDffs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_dff(a);
  const NetId n1 = nl.add_gate(GateType::kNot, q);
  const NetId n2 = nl.add_gate(GateType::kBuf, q);
  nl.mark_output(n1);
  nl.mark_output(n2);
  const Netlist expanded = nl.with_explicit_branches();
  EXPECT_EQ(expanded.dffs().size(), 1u);
  // a has fanout 1 (the DFF D pin); q drives two pins -> 2 buffers.
  EXPECT_EQ(expanded.num_nets(), nl.num_nets() + 2);
}

TEST(Netlist, GateHistogramCounts) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate(GateType::kAnd, a, b);
  nl.add_gate(GateType::kAnd, a, b);
  nl.add_gate(GateType::kXor, a, b);
  const auto h = nl.gate_histogram();
  EXPECT_EQ(h.at(GateType::kInput), 2u);
  EXPECT_EQ(h.at(GateType::kAnd), 2u);
  EXPECT_EQ(h.at(GateType::kXor), 1u);
}

}  // namespace
}  // namespace msts::digital
