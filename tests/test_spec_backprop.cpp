// Tests for specification back-propagation (core/spec_backprop.h).
#include "core/spec_backprop.h"

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::core {
namespace {

path::PathConfig cfg() { return path::reference_path_config(); }

SystemRequirements default_req() {
  SystemRequirements r;
  r.min_path_gain_db = 22.0;
  r.max_path_gain_db = 28.0;
  r.min_output_snr_db = 45.0;
  r.input_level_dbm = -40.0;
  return r;
}

TEST(SpecBackprop, BlockWindowsStackToTheSystemWindow) {
  const auto r = backpropagate_spec(cfg(), default_req());
  ASSERT_EQ(r.blocks.size(), 3u);
  EXPECT_TRUE(r.feasible);
  double lo_sum = 0.0, hi_sum = 0.0;
  for (const auto& b : r.blocks) {
    lo_sum += b.gain_window_db.lo;
    hi_sum += b.gain_window_db.hi;
    // Every block window contains its nominal.
    EXPECT_TRUE(b.gain_window_db.passes(b.nominal_gain_db)) << b.block;
  }
  // Worst-case stacks exactly fill the system window.
  EXPECT_NEAR(lo_sum, default_req().min_path_gain_db, 1e-9);
  EXPECT_NEAR(hi_sum, default_req().max_path_gain_db, 1e-9);
}

TEST(SpecBackprop, WindowsScaleWithBlockTolerances) {
  // The amp (±1 dB tol) gets a larger share than the LPF (±0.5 dB).
  const auto r = backpropagate_spec(cfg(), default_req());
  const auto width = [](const BlockBudget& b) {
    return b.gain_window_db.hi - b.gain_window_db.lo;
  };
  const auto* amp = &r.blocks[0];
  const auto* lpf = &r.blocks[2];
  EXPECT_EQ(amp->block, "amp");
  EXPECT_EQ(lpf->block, "lpf");
  EXPECT_GT(width(*amp), width(*lpf));
}

TEST(SpecBackprop, NfBudgetsAreAchievableAndOrdered) {
  const auto r = backpropagate_spec(cfg(), default_req());
  // Every NF ceiling must sit above the block's nominal NF (else infeasible).
  EXPECT_GT(r.blocks[0].nf_max_db, cfg().amp.nf_db.nominal);
  EXPECT_GT(r.blocks[1].nf_max_db, cfg().mixer.nf_db.nominal);
  // The mixer NF budget is looser than the amp's (Friis: later stages are
  // divided by the front-end gain).
  EXPECT_GT(r.blocks[1].nf_max_db, r.blocks[0].nf_max_db);
}

TEST(SpecBackprop, InfeasibleGainWindowFlagged) {
  auto req = default_req();
  req.min_path_gain_db = 30.0;  // nominal cascade is 25 dB
  req.max_path_gain_db = 32.0;
  const auto r = backpropagate_spec(cfg(), req);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.note.empty());
}

TEST(SpecBackprop, InfeasibleSnrFlagged) {
  auto req = default_req();
  req.min_output_snr_db = 90.0;  // impossible at -40 dBm over 2 MHz
  const auto r = backpropagate_spec(cfg(), req);
  EXPECT_FALSE(r.feasible);
}

TEST(SpecBackprop, TighterSnrShrinksNfCeilings) {
  auto loose = default_req();
  loose.min_output_snr_db = 40.0;
  auto tight = default_req();
  tight.min_output_snr_db = 50.0;
  const auto rl = backpropagate_spec(cfg(), loose);
  const auto rt = backpropagate_spec(cfg(), tight);
  EXPECT_GT(rl.blocks[0].nf_max_db, rt.blocks[0].nf_max_db);
  EXPECT_GT(rl.path_nf_max_db, rt.path_nf_max_db);
}

TEST(SpecBackprop, RejectsEmptyGainWindow) {
  auto req = default_req();
  req.max_path_gain_db = req.min_path_gain_db;
  EXPECT_THROW(backpropagate_spec(cfg(), req), std::invalid_argument);
}

TEST(SpecBackprop, FormatsReadably) {
  const auto text = format_backprop(backpropagate_spec(cfg(), default_req()));
  EXPECT_NE(text.find("amp"), std::string::npos);
  EXPECT_NE(text.find("NF"), std::string::npos);
  EXPECT_NE(text.find("feasible"), std::string::npos);
}

}  // namespace
}  // namespace msts::core
