// Tests for the parallel fault-simulation driver (digital/fault_sim.h).
#include "digital/fault_sim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"
#include "digital/fir.h"
#include "dsp/fir_design.h"
#include "stats/rng.h"

namespace msts::digital {
namespace {

// Small circuit: y = (a AND b) XOR c, 3-bit input bus mapped bitwise.
struct SmallCircuit {
  Netlist nl;
  Bus in;
  Bus out;
  NetId and_net;
};

SmallCircuit make_small() {
  SmallCircuit c;
  NetlistBuilder b(c.nl);
  c.in = b.input_bus("i", 3);
  c.and_net = c.nl.add_gate(GateType::kAnd, c.in.bits[0], c.in.bits[1], "g1");
  const NetId y = c.nl.add_gate(GateType::kXor, c.and_net, c.in.bits[2], "y");
  c.nl.mark_output(y);
  c.out.bits = {y};
  return c;
}

TEST(FaultSim, GoodWaveformMatchesTruthTable) {
  SmallCircuit c = make_small();
  const std::vector<std::int64_t> stim = {0, 1, 2, 3, -4, -3, -2, -1};  // 3-bit values
  const auto y = simulate_good(c.nl, c.in, c.out, stim);
  ASSERT_EQ(y.size(), stim.size());
  for (std::size_t i = 0; i < stim.size(); ++i) {
    const std::uint64_t bits = static_cast<std::uint64_t>(stim[i]);
    const bool a = bits & 1, b = bits & 2, cc = bits & 4;
    const bool expect = (a && b) ^ cc;
    // Output bus is 1 bit wide; value is sign-extended (bit pattern 1 -> -1).
    EXPECT_EQ(y[i] != 0, expect) << "i=" << i;
  }
}

TEST(FaultSim, DetectableFaultIsDetected) {
  SmallCircuit c = make_small();
  // Stimulus covers all 8 input combinations: every stuck-at on the AND net
  // and the inputs is detectable.
  std::vector<std::int64_t> stim;
  for (int v = 0; v < 8; ++v) stim.push_back(v >= 4 ? v - 8 : v);
  const auto faults = all_faults(c.nl);
  const auto r = simulate_faults(c.nl, c.in, c.out, stim, faults);
  ASSERT_EQ(r.detected.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_TRUE(r.detected[i]) << describe(c.nl, faults[i]);
  }
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(FaultSim, UnexercisedFaultIsNotDetected) {
  SmallCircuit c = make_small();
  // Hold inputs at a=1,b=1,c=0 only: AND output is always 1, so SA1 on the
  // AND net can never be observed.
  const std::vector<std::int64_t> stim(4, 3);
  const Fault sa1{c.and_net, true};
  const Fault sa0{c.and_net, false};
  const Fault faults[] = {sa1, sa0};
  const auto r = simulate_faults(c.nl, c.in, c.out, stim, faults);
  EXPECT_FALSE(r.detected[0]);  // SA1 invisible
  EXPECT_TRUE(r.detected[1]);   // SA0 flips the output
  EXPECT_DOUBLE_EQ(r.coverage(), 0.5);
}

TEST(FaultSim, WaveformCaptureMatchesSingleFaultRuns) {
  SmallCircuit c = make_small();
  std::vector<std::int64_t> stim;
  for (int v = 0; v < 8; ++v) stim.push_back(v >= 4 ? v - 8 : v);
  const auto faults = all_faults(c.nl);
  FaultSimOptions opts;
  opts.capture_waveforms = true;
  const auto r = simulate_faults(c.nl, c.in, c.out, stim, faults, opts);
  ASSERT_EQ(r.waveforms.size(), faults.size());

  // Re-run each fault alone and compare streams.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault one[] = {faults[i]};
    FaultSimOptions single;
    single.capture_waveforms = true;
    const auto rr = simulate_faults(c.nl, c.in, c.out, stim, one, single);
    ASSERT_EQ(r.waveforms[i], rr.waveforms[0]) << describe(c.nl, faults[i]);
  }
}

TEST(FaultSim, MoreThan63FaultsBatchCorrectly) {
  // The 13-tap FIR has thousands of faults; spot-check batching by verifying
  // that detection results are independent of batch position.
  const auto h = dsp::design_lowpass(5, 0.2);
  const auto q = dsp::quantize_coefficients(h, 6);
  const FirCircuit fir = build_fir(q, 6, 6);
  const Netlist nl = fir.netlist.with_explicit_branches();
  Bus in, out;
  for (std::size_t i = 0; i < fir.input.width(); ++i) in.bits.push_back(nl.inputs()[i]);
  for (std::size_t i = 0; i < fir.output.width(); ++i) out.bits.push_back(nl.outputs()[i]);

  stats::Rng rng(5);
  std::vector<std::int64_t> stim;
  for (int i = 0; i < 64; ++i) {
    stim.push_back(static_cast<std::int64_t>(rng.uniform_int(64)) - 32);
  }

  auto faults = collapsed_faults(nl);
  ASSERT_GT(faults.size(), 63u);
  const auto r_all = simulate_faults(nl, in, out, stim, faults);

  // Pick a handful of faults across batch boundaries and re-simulate alone.
  for (std::size_t idx : {std::size_t{0}, std::size_t{62}, std::size_t{63},
                          std::size_t{64}, faults.size() - 1}) {
    const Fault one[] = {faults[idx]};
    const auto r_one = simulate_faults(nl, in, out, stim, one);
    EXPECT_EQ(r_one.detected[0], r_all.detected[idx]) << "fault index " << idx;
  }
}

TEST(FaultSim, GoodWaveformIndependentOfFaultLoad) {
  SmallCircuit c = make_small();
  std::vector<std::int64_t> stim = {1, 3, 5, 7, 2, 6};
  const auto faults = all_faults(c.nl);
  const auto with_faults = simulate_faults(c.nl, c.in, c.out, stim, faults);
  const auto clean = simulate_good(c.nl, c.in, c.out, stim);
  EXPECT_EQ(with_faults.good_waveform, clean);
}

TEST(FaultSim, RejectsEmptyStimulus) {
  SmallCircuit c = make_small();
  EXPECT_THROW(simulate_faults(c.nl, c.in, c.out, {}, {}), std::invalid_argument);
}

TEST(FaultSim, ResultIdenticalAcrossThreadCounts) {
  // The batch partition is fixed and batches are independent, so verdicts,
  // the good waveform, and captured waveforms must be identical for every
  // thread count.
  const auto h = dsp::design_lowpass(5, 0.2);
  const auto q = dsp::quantize_coefficients(h, 6);
  const FirCircuit fir = build_fir(q, 6, 6);
  const Netlist nl = fir.netlist.with_explicit_branches();
  Bus in, out;
  for (std::size_t i = 0; i < fir.input.width(); ++i) in.bits.push_back(nl.inputs()[i]);
  for (std::size_t i = 0; i < fir.output.width(); ++i) out.bits.push_back(nl.outputs()[i]);

  stats::Rng rng(6);
  std::vector<std::int64_t> stim;
  for (int i = 0; i < 48; ++i) {
    stim.push_back(static_cast<std::int64_t>(rng.uniform_int(64)) - 32);
  }
  auto faults = collapsed_faults(nl);
  ASSERT_GT(faults.size(), 126u);  // at least three batches

  FaultSimOptions serial;
  serial.capture_waveforms = true;
  serial.threads = 1;
  const auto r1 = simulate_faults(nl, in, out, stim, faults, serial);
  for (const int threads : {2, 8}) {
    FaultSimOptions opts = serial;
    opts.threads = threads;
    const auto rt = simulate_faults(nl, in, out, stim, faults, opts);
    EXPECT_EQ(rt.detected, r1.detected) << threads << " threads";
    EXPECT_EQ(rt.good_waveform, r1.good_waveform) << threads << " threads";
    EXPECT_EQ(rt.waveforms, r1.waveforms) << threads << " threads";
  }
}

TEST(FaultSim, CoverageOfEmptyFaultListIsZero) {
  SmallCircuit c = make_small();
  const std::vector<std::int64_t> stim = {1, 2};
  const auto r = simulate_faults(c.nl, c.in, c.out, stim, {});
  EXPECT_DOUBLE_EQ(r.coverage(), 0.0);
  EXPECT_EQ(r.good_waveform.size(), stim.size());
}

}  // namespace
}  // namespace msts::digital
