// Tests for the scenario sweep engine (src/sweep): matrix expansion,
// deterministic parallel scoring (bit-identical rankings and fingerprints at
// 1, 2 and 8 threads — the acceptance contract), ranking order, and the MC
// cross-check columns. Runs under the `sweep` ctest label.
#include "sweep/sweep.h"

#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "path/receiver_path.h"

namespace msts::sweep {
namespace {

ScenarioMatrix default_matrix() {
  ScenarioMatrix m;
  m.base = path::reference_path_config();
  return m;
}

SweepOptions fast_opts(int threads = 0) {
  SweepOptions o;
  o.mc_trials = 4000;
  o.threads = threads;
  return o;
}

TEST(ScenarioMatrix, DefaultMatrixExpandsToTwelveUniqueValidScenarios) {
  const std::vector<Scenario> scenarios = default_matrix().expand();
  ASSERT_EQ(scenarios.size(), 12u);  // 4 topologies x 3 filter orders
  std::set<std::string> names;
  for (const Scenario& s : scenarios) {
    names.insert(s.name);
    EXPECT_NO_THROW(path::validate(s.graph)) << s.name;
  }
  EXPECT_EQ(names.size(), scenarios.size());
  EXPECT_TRUE(names.count("canonical/ord4")) << "canonical instance missing";
}

TEST(ScenarioMatrix, AxesCrossAndApplyToTheirBlocks) {
  ScenarioMatrix m = default_matrix();
  m.topologies = {"canonical", "dual-lpf"};
  m.lpf_orders = {2, 6};
  m.lo_freqs_hz = {9.0e6, 10.0e6};
  m.fir_taps = {9, 17};
  const std::vector<Scenario> scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 16u);  // 2 x 2 x 2 x 2

  for (const Scenario& s : scenarios) {
    for (const path::BlockConfig& b : s.graph.blocks) {
      if (b.kind == path::BlockKind::kLpf) {
        EXPECT_TRUE(b.lpf.order == 2 || b.lpf.order == 6) << s.name;
      }
      if (b.kind == path::BlockKind::kMixer) {
        EXPECT_TRUE(b.lo.freq_hz == 9.0e6 || b.lo.freq_hz == 10.0e6) << s.name;
      }
      if (b.kind == path::BlockKind::kFir) {
        EXPECT_TRUE(b.fir_taps == 9u || b.fir_taps == 17u) << s.name;
      }
    }
    // Axis values are part of the scenario name.
    EXPECT_NE(s.name.find("/lo"), std::string::npos) << s.name;
    EXPECT_NE(s.name.find("/taps"), std::string::npos) << s.name;
  }
  // dual-lpf applies the order to BOTH filter blocks.
  for (const Scenario& s : scenarios) {
    if (s.graph.count(path::BlockKind::kLpf) == 2) {
      const auto first = *s.graph.index_of(path::BlockKind::kLpf);
      EXPECT_EQ(s.graph.blocks[first].lpf.order,
                s.graph.blocks[first + 1].lpf.order)
          << s.name;
    }
  }
}

TEST(ScenarioMatrix, UnknownTopologyIsRejected) {
  EXPECT_THROW(make_topology("ring-vco", path::reference_path_config()),
               std::invalid_argument);
  ScenarioMatrix m = default_matrix();
  m.topologies = {"canonical", "typo"};
  EXPECT_THROW(m.expand(), std::invalid_argument);
}

TEST(Sweep, RejectsEmptyScenarioList) {
  EXPECT_THROW(run_sweep({}, fast_opts()), std::invalid_argument);
}

TEST(Sweep, ScoresAreSaneAndRankingIsOrdered) {
  const SweepResult r = run_sweep(default_matrix().expand(), fast_opts());
  ASSERT_EQ(r.ranking.size(), 12u);
  for (const ScenarioScore& s : r.ranking) {
    EXPECT_GT(s.plan_tests, 0u) << s.name;
    EXPECT_EQ(s.translatable + s.dft_required, s.plan_tests) << s.name;
    EXPECT_GE(s.testability, 0.0);
    EXPECT_LE(s.testability, 1.0);
    EXPECT_GE(s.total_yield_loss, 0.0);
    EXPECT_GE(s.worst_fcl, 0.0);
    EXPECT_NE(s.content_hash, 0u) << s.name;
    // The MC cross-check tracks the analytic columns. FCL gets a looser
    // band: its denominator is the small defect population (a few percent of
    // the 4000 trials), so its sampling noise is an order larger than YL's.
    EXPECT_NEAR(s.mc_yield_loss, s.total_yield_loss, 0.05) << s.name;
    EXPECT_NEAR(s.mc_fcl, s.worst_fcl, 0.2) << s.name;
  }
  // Best-first by the documented total ordering.
  for (std::size_t i = 1; i < r.ranking.size(); ++i) {
    const ScenarioScore& hi = r.ranking[i - 1];
    const ScenarioScore& lo = r.ranking[i];
    EXPECT_GE(hi.testability, lo.testability) << hi.name << " vs " << lo.name;
    if (hi.testability == lo.testability) {
      EXPECT_LE(hi.total_yield_loss, lo.total_yield_loss)
          << hi.name << " vs " << lo.name;
    }
  }
}

// The acceptance contract: the ranking (names, every score, the fingerprint)
// is bit-identical at 1, 2 and 8 threads.
TEST(SweepThreadCounts, RankingAndFingerprintBitIdenticalAcrossThreadCounts) {
  const std::vector<Scenario> scenarios = default_matrix().expand();
  ASSERT_GE(scenarios.size(), 12u);
  const SweepResult serial = run_sweep(scenarios, fast_opts(1));
  for (const int threads : {2, 8}) {
    const SweepResult parallel = run_sweep(scenarios, fast_opts(threads));
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint) << threads;
    ASSERT_EQ(parallel.ranking.size(), serial.ranking.size()) << threads;
    for (std::size_t i = 0; i < serial.ranking.size(); ++i) {
      const ScenarioScore& a = serial.ranking[i];
      const ScenarioScore& b = parallel.ranking[i];
      EXPECT_EQ(a.name, b.name) << threads;
      EXPECT_EQ(a.content_hash, b.content_hash) << threads;
      EXPECT_EQ(a.plan_tests, b.plan_tests) << threads;
      // Bit-level double comparisons — no tolerance.
      EXPECT_EQ(a.testability, b.testability) << threads << " " << a.name;
      EXPECT_EQ(a.total_yield_loss, b.total_yield_loss) << threads << " " << a.name;
      EXPECT_EQ(a.worst_fcl, b.worst_fcl) << threads << " " << a.name;
      EXPECT_EQ(a.mc_yield_loss, b.mc_yield_loss) << threads << " " << a.name;
      EXPECT_EQ(a.mc_fcl, b.mc_fcl) << threads << " " << a.name;
    }
  }
}

// The nested-parallelism acceptance pin: inner MC threading on
// (mc_threads = 0 -> nested task-sets on the same scheduler workers) must
// not move a single bit of any ranking, score, or fingerprint relative to
// the fully serial inner evaluation, at 1, 2 and 8 outer threads.
TEST(SweepThreadCounts, NestedInnerMcBitIdenticalAcrossThreadCounts) {
  const std::vector<Scenario> scenarios = default_matrix().expand();
  const SweepResult serial = run_sweep(scenarios, fast_opts(1));
  for (const int threads : {1, 2, 8}) {
    SweepOptions opts = fast_opts(threads);
    opts.mc_threads = 0;  // nested: MC blocks fan out inside scenario tasks
    const SweepResult nested = run_sweep(scenarios, opts);
    EXPECT_EQ(nested.fingerprint, serial.fingerprint) << threads;
    ASSERT_EQ(nested.ranking.size(), serial.ranking.size()) << threads;
    for (std::size_t i = 0; i < serial.ranking.size(); ++i) {
      EXPECT_EQ(serial.ranking[i].name, nested.ranking[i].name) << threads;
      EXPECT_EQ(serial.ranking[i].mc_yield_loss, nested.ranking[i].mc_yield_loss)
          << threads << " " << serial.ranking[i].name;
      EXPECT_EQ(serial.ranking[i].mc_fcl, nested.ranking[i].mc_fcl)
          << threads << " " << serial.ranking[i].name;
    }
  }
}

// A scenario whose synthesis throws fails the sweep with the scenario name
// in the message, and when several could fail the lowest-indexed failure
// wins at any thread count.
TEST(Sweep, PoisonedScenarioFailsTheSweepWithItsName) {
  std::vector<Scenario> scenarios = default_matrix().expand();
  scenarios.resize(6);
  // Poison one scenario mid-list: an empty graph fails synthesis validation.
  scenarios[3].name = "poisoned/mid";
  scenarios[3].graph.blocks.clear();
  for (const int threads : {1, 2, 8}) {
    try {
      (void)run_sweep(scenarios, fast_opts(threads));
      FAIL() << "expected std::runtime_error at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned/mid"), std::string::npos)
          << "threads=" << threads << " what()=" << e.what();
    }
  }

  // Two poisoned scenarios: the lowest index is the one reported.
  scenarios[5].name = "poisoned/late";
  scenarios[5].graph.blocks.clear();
  for (const int threads : {1, 8}) {
    try {
      (void)run_sweep(scenarios, fast_opts(threads));
      FAIL() << "expected std::runtime_error at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned/mid"), std::string::npos)
          << "threads=" << threads << " what()=" << e.what();
      EXPECT_EQ(std::string(e.what()).find("poisoned/late"), std::string::npos)
          << "threads=" << threads << " what()=" << e.what();
    }
  }
}

TEST(Sweep, SeedChangesMcColumnsButNotThePlan) {
  std::vector<Scenario> scenarios = default_matrix().expand();
  scenarios.resize(2);
  SweepOptions a = fast_opts();
  SweepOptions b = fast_opts();
  b.seed = a.seed + 1;
  const SweepResult ra = run_sweep(scenarios, a);
  const SweepResult rb = run_sweep(scenarios, b);
  // Plans are RNG-free; only the MC cross-check columns may move.
  bool mc_moved = false;
  for (std::size_t i = 0; i < ra.ranking.size(); ++i) {
    EXPECT_EQ(ra.ranking[i].content_hash, rb.ranking[i].content_hash);
    EXPECT_EQ(ra.ranking[i].total_yield_loss, rb.ranking[i].total_yield_loss);
    mc_moved |= (ra.ranking[i].mc_yield_loss != rb.ranking[i].mc_yield_loss);
  }
  EXPECT_TRUE(mc_moved);
}

TEST(Sweep, FormatRankingListsEveryScenario) {
  std::vector<Scenario> scenarios = default_matrix().expand();
  scenarios.resize(3);
  const SweepResult r = run_sweep(scenarios, fast_opts());
  const std::string table = format_ranking(r);
  for (const ScenarioScore& s : r.ranking) {
    EXPECT_NE(table.find(s.name), std::string::npos) << s.name;
  }
}

}  // namespace
}  // namespace msts::sweep
