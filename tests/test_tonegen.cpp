// Tests for multi-tone stimulus generation and test-tone placement
// (dsp/tonegen.h).
#include "dsp/tonegen.h"

#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::dsp {
namespace {

TEST(ToneGen, SingleToneMatchesClosedForm) {
  const double fs = 48000.0;
  const Tone t{1000.0, 0.5, 0.25};
  const auto x = generate_tones(std::span(&t, 1), 0.1, fs, 64);
  ASSERT_EQ(x.size(), 64u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double expected =
        0.1 + 0.5 * std::cos(kTwoPi * 1000.0 * static_cast<double>(i) / fs + 0.25);
    EXPECT_NEAR(x[i], expected, 1e-12) << "i=" << i;
  }
}

TEST(ToneGen, SumsTones) {
  const double fs = 1e6;
  const Tone tones[] = {{10e3, 1.0, 0.0}, {30e3, 0.5, 1.0}};
  const auto both = generate_tones(tones, 0.0, fs, 32);
  const auto first = generate_tones(std::span(tones, 1), 0.0, fs, 32);
  const auto second = generate_tones(std::span(tones + 1, 1), 0.0, fs, 32);
  for (std::size_t i = 0; i < both.size(); ++i) {
    EXPECT_NEAR(both[i], first[i] + second[i], 1e-12);
  }
}

TEST(ToneGen, EmptyToneListGivesDc) {
  const auto x = generate_tones({}, 0.7, 1e6, 16);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.7);
}

TEST(CoherentFrequency, LandsOnOddBin) {
  const double fs = 4e6;
  const std::size_t n = 4096;
  const double f = coherent_frequency(fs, n, 500e3);
  const double bin = f / (fs / static_cast<double>(n));
  EXPECT_NEAR(bin, std::round(bin), 1e-9);
  EXPECT_EQ(static_cast<long long>(std::llround(bin)) % 2, 1);
  EXPECT_NEAR(f, 500e3, 2.0 * fs / static_cast<double>(n));
}

TEST(CoherentFrequency, EvenBinAllowedWhenRequested) {
  const double fs = 1024.0;
  const std::size_t n = 1024;
  const double f = coherent_frequency(fs, n, 100.0, /*odd_bin=*/false);
  EXPECT_DOUBLE_EQ(f, 100.0);  // bin 100 exactly
}

TEST(CoherentFrequency, ClampsIntoValidRange) {
  const double fs = 1000.0;
  const std::size_t n = 64;
  // Target far above Nyquist clamps below fs/2; target 0 clamps to bin >= 1.
  EXPECT_LT(coherent_frequency(fs, n, 1e9), fs / 2.0);
  EXPECT_GT(coherent_frequency(fs, n, 0.0), 0.0);
}

class TonePlacement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TonePlacement, TonesAreDistinctInBandAndIntermodClean) {
  const double fs = 4e6;
  const std::size_t n = 4096;
  const double lo = 100e3;
  const double hi = 900e3;
  const auto freqs = place_test_tones(fs, n, lo, hi, GetParam());
  ASSERT_EQ(freqs.size(), GetParam());

  const double bw = fs / static_cast<double>(n);
  std::set<std::int64_t> bins;
  for (double f : freqs) {
    EXPECT_GE(f, lo - bw);
    EXPECT_LE(f, hi + bw);
    const auto k = static_cast<std::int64_t>(std::llround(f / bw));
    EXPECT_NEAR(f / bw, static_cast<double>(k), 1e-9);  // coherent
    EXPECT_TRUE(bins.insert(k).second) << "duplicate tone bin " << k;
  }
  // No pairwise IM3/IM2/harmonic product may land on a fundamental bin.
  for (std::int64_t a : bins) {
    for (std::int64_t b : bins) {
      if (a == b) continue;
      const std::int64_t products[] = {2 * a - b, 2 * b - a, a + b,
                                       std::abs(a - b), 2 * a, 3 * a};
      for (std::int64_t p : products) {
        EXPECT_EQ(bins.count(p), 0u)
            << "product " << p << " of tones " << a << "," << b << " collides";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, TonePlacement, ::testing::Values<std::size_t>(1, 2, 3, 4));

TEST(TonePlacement, RejectsBadBand) {
  EXPECT_THROW(place_test_tones(1e6, 1024, 200e3, 100e3, 2), std::invalid_argument);
  EXPECT_THROW(place_test_tones(1e6, 1024, 0.0, 600e3, 2), std::invalid_argument);
  EXPECT_THROW(place_test_tones(1e6, 1024, 0.0, 100e3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace msts::dsp
