// Tests for dictionary-based spectral fault diagnosis (core/diagnosis.h).
#include "core/diagnosis.h"

#include <gtest/gtest.h>

#include "digital/fir.h"

namespace msts::core {
namespace {

struct Fixture {
  path::PathConfig config = path::reference_path_config();
  DigitalTester tester{config};
  DigitalTestPlan plan;
  std::vector<std::int64_t> stimulus;
  std::vector<digital::Fault> faults;

  Fixture() {
    DigitalTestOptions opt;
    opt.record = 256;
    plan = tester.plan(opt);
    stimulus = tester.ideal_codes(plan);
    // A manageable, detectable-heavy dictionary: every 60th fault.
    for (std::size_t i = 0; i < tester.faults().size(); i += 60) {
      faults.push_back(tester.faults()[i]);
    }
  }

  std::vector<std::int64_t> output_with_fault(const digital::Fault& f) const {
    digital::FaultSimOptions o;
    o.capture_waveforms = true;
    const digital::Fault one[] = {f};
    const auto sim = digital::simulate_faults(tester.netlist(), tester.input_bus(),
                                              tester.output_bus(), stimulus, one, o);
    return sim.waveforms[0];
  }
};

TEST(Diagnosis, DictionaryHoldsOneEntryPerFault) {
  Fixture fx;
  const FaultDictionary dict(fx.tester, fx.plan, fx.stimulus, fx.faults);
  EXPECT_EQ(dict.size(), fx.faults.size());
}

TEST(Diagnosis, SelfSignatureRanksFirst) {
  Fixture fx;
  const FaultDictionary dict(fx.tester, fx.plan, fx.stimulus, fx.faults);
  int checked = 0;
  for (std::size_t i = 0; i < fx.faults.size() && checked < 8; i += 5) {
    if (dict.entry(i).bins.empty()) continue;  // undetectable: no signature
    const auto out = fx.output_with_fault(fx.faults[i]);
    const auto ranked = dict.diagnose(out, 3);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0].fault, fx.faults[i])
        << describe(fx.tester.netlist(), fx.faults[i]);
    EXPECT_NEAR(ranked[0].score, 1.0, 1e-9);
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(Diagnosis, HealthyOutputMatchesNothing) {
  Fixture fx;
  const FaultDictionary dict(fx.tester, fx.plan, fx.stimulus, fx.faults);
  digital::FirModel fir(fx.tester.fir().coeffs, fx.config.adc.bits);
  std::vector<std::int64_t> good;
  for (auto c : fx.stimulus) good.push_back(fir.step(c));
  const auto ranked = dict.diagnose(good, 3);
  for (const auto& c : ranked) {
    EXPECT_LT(c.score, 0.99);
  }
}

TEST(Diagnosis, SimilarityIsSymmetricAndBounded) {
  FaultSignature a;
  a.bins = {3, 7, 9};
  a.excess_db = {2.0f, 4.0f, 1.0f};
  FaultSignature b;
  b.bins = {3, 9, 12};
  b.excess_db = {2.0f, 1.5f, 3.0f};
  const double ab = signature_similarity(a, b);
  const double ba = signature_similarity(b, a);
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
  EXPECT_NEAR(signature_similarity(a, a), 1.0, 1e-12);
  const FaultSignature empty;
  EXPECT_DOUBLE_EQ(signature_similarity(a, empty), 0.0);
}

TEST(Diagnosis, TopKLimitsTheCandidateList) {
  Fixture fx;
  const FaultDictionary dict(fx.tester, fx.plan, fx.stimulus, fx.faults);
  const auto out = fx.output_with_fault(fx.faults[0]);
  EXPECT_LE(dict.diagnose(out, 2).size(), 2u);
}

TEST(Diagnosis, RejectsWrongRecordLength) {
  Fixture fx;
  const FaultDictionary dict(fx.tester, fx.plan, fx.stimulus, fx.faults);
  const std::vector<std::int64_t> wrong(100, 0);
  EXPECT_THROW(dict.diagnose(wrong, 3), std::invalid_argument);
}

}  // namespace
}  // namespace msts::core
