// Tests for the signal-attribute model (core/signal_attr.h).
#include "core/signal_attr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::core {
namespace {

using stats::Uncertain;

SignalAttributes two_tone_sig() {
  SignalAttributes s = make_stimulus(
      4e6, {ToneAttr{Uncertain::exact(300e3), Uncertain::exact(0.1), Uncertain::exact(0.0)},
            ToneAttr{Uncertain::exact(500e3), Uncertain::exact(0.2), Uncertain::exact(0.0)}});
  return s;
}

TEST(SignalAttributes, TotalTonePowerSums) {
  const auto s = two_tone_sig();
  EXPECT_NEAR(s.total_tone_power(), 0.1 * 0.1 / 2.0 + 0.2 * 0.2 / 2.0, 1e-12);
}

TEST(SignalAttributes, SnrUsesTrackedNoise) {
  auto s = two_tone_sig();
  s.noise_power = Uncertain::exact(1e-8);
  const double expected =
      db_from_power_ratio(s.total_tone_power() / 1e-8);
  EXPECT_NEAR(s.snr_db(), expected, 1e-9);
}

TEST(SignalAttributes, WorstSpur) {
  auto s = two_tone_sig();
  EXPECT_DOUBLE_EQ(s.worst_spur_amplitude(), 0.0);
  s.spurs.push_back(SpurAttr{1e6, Uncertain::exact(1e-4), "a"});
  s.spurs.push_back(SpurAttr{2e6, Uncertain::exact(3e-4), "b"});
  EXPECT_DOUBLE_EQ(s.worst_spur_amplitude(), 3e-4);
}

TEST(SignalAttributes, MinDetectableAmplitudeScalesWithNoise) {
  auto s = two_tone_sig();
  s.noise_power = Uncertain::exact(1e-8);
  const double a1 = s.min_detectable_amplitude(10.0, 1024);
  s.noise_power = Uncertain::exact(4e-8);
  const double a2 = s.min_detectable_amplitude(10.0, 1024);
  EXPECT_NEAR(a2 / a1, 2.0, 1e-9);  // amplitude goes as sqrt(power)
  // More margin -> higher detectable level.
  EXPECT_GT(s.min_detectable_amplitude(20.0, 1024), a2);
  // More bins -> noise spread thinner -> lower detectable level.
  EXPECT_LT(s.min_detectable_amplitude(10.0, 4096), a2);
  EXPECT_THROW(s.min_detectable_amplitude(10.0, 1), std::invalid_argument);
}

TEST(SignalAttributes, MakeStimulusValidates) {
  EXPECT_THROW(make_stimulus(0.0, {}), std::invalid_argument);
  const auto s = make_stimulus(1e6, {});
  EXPECT_DOUBLE_EQ(s.dc.nominal, 0.0);
  EXPECT_DOUBLE_EQ(s.noise_power.nominal, 0.0);
}

TEST(SignalAttributes, ToStringMentionsKeyFacts) {
  auto s = two_tone_sig();
  s.spurs.push_back(SpurAttr{1e6, Uncertain::exact(1e-4), "x"});
  const std::string str = to_string(s);
  EXPECT_NE(str.find("tone"), std::string::npos);
  EXPECT_NE(str.find("spurs"), std::string::npos);
  EXPECT_NE(str.find("dc"), std::string::npos);
}

}  // namespace
}  // namespace msts::core
