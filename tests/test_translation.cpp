// Tests for the translation engine (core/translation.h): error budgets,
// untranslatability detection, and executed translated measurements against
// the true (sampled) block parameters.
#include "core/translation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "base/units.h"

namespace msts::core {
namespace {

path::PathConfig cfg() { return path::reference_path_config(); }

path::MeasureOptions fast_opts() {
  path::MeasureOptions o;
  o.digital_record = 2048;
  return o;
}

TEST(Translator, AdaptiveIip3ErrorSmallerThanNominal) {
  const Translator tr(cfg());
  const auto adaptive = tr.analyze_mixer_iip3(true);
  const auto nominal = tr.analyze_mixer_iip3(false);
  EXPECT_EQ(adaptive.method, TranslationMethod::kPropagation);
  EXPECT_EQ(nominal.method, TranslationMethod::kPropagation);
  // Fig. 4: adaptive error ~ tol(G_A) ~ 1 dB; nominal error stacks the mixer
  // and post-mixer tolerances (>= 1.5 dB).
  EXPECT_LT(adaptive.error.wc, nominal.error.wc);
  EXPECT_NEAR(adaptive.error.wc, 1.0, 0.2);
  EXPECT_GT(nominal.error.wc, 1.4);
}

TEST(Translator, P1dbErrorIsAmpTolerance) {
  const Translator tr(cfg());
  const auto a = tr.analyze_mixer_p1db();
  EXPECT_NEAR(a.error.wc, cfg().amp.gain_db.wc, 0.15);
}

TEST(Translator, CutoffErrorWellBelowTolerance) {
  const Translator tr(cfg());
  const auto a = tr.analyze_lpf_cutoff();
  EXPECT_GT(a.error.wc, 1e3);                      // nonzero: flatness budget
  EXPECT_LT(a.error.wc, cfg().lpf.cutoff_hz.wc);   // but below the 50 kHz tol
}

TEST(Translator, UntranslatableParametersAreFlagged) {
  const Translator tr(cfg());
  EXPECT_FALSE(tr.analyze_mixer_lo_isolation().translatable);
  EXPECT_EQ(tr.analyze_mixer_lo_isolation().method, TranslationMethod::kDirectDft);
  EXPECT_FALSE(tr.analyze_amp_offset().translatable);
  EXPECT_FALSE(tr.analyze_amp_hd3().translatable);
}

TEST(Translator, PathGainIsComposition) {
  const Translator tr(cfg());
  const auto a = tr.analyze_path_gain();
  EXPECT_EQ(a.method, TranslationMethod::kComposition);
  EXPECT_LT(a.error.wc, 0.1);  // high-accuracy composite
}

TEST(Translator, StimulusChoicesAreInBand) {
  const Translator tr(cfg());
  const double f = tr.test_if_freq();
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, cfg().lpf.cutoff_hz.nominal);
  const auto [f1, f2] = tr.test_two_tone();
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, cfg().lpf.cutoff_hz.nominal);
  EXPECT_GT(2.0 * f1 - f2, 0.0);  // IM3 stays at positive frequency
  EXPECT_GT(tr.linear_drive_vpeak(), 0.0);
}

TEST(Translator, MeasuredPathGainTracksSampledPath) {
  const auto c = cfg();
  const Translator tr(c);
  stats::Rng mc(31);
  stats::Rng noise(32);
  for (int i = 0; i < 3; ++i) {
    const auto path = path::ReceiverPath::sampled(c, mc);
    const double g = tr.measure_path_gain_db(path, noise, fast_opts());
    const double actual = path.amp().actual_gain_db() +
                          path.mixer().actual_conv_gain_db() +
                          path.lpf().actual_passband_gain_db();
    EXPECT_NEAR(g, actual, 0.35) << "instance " << i;
  }
}

TEST(Translator, TranslatedIip3WithinAnalysisError) {
  const auto c = cfg();
  const Translator tr(c);
  const double budget_adaptive = tr.analyze_mixer_iip3(true).error.wc;
  stats::Rng mc(33);
  stats::Rng noise(34);
  for (int i = 0; i < 3; ++i) {
    const auto path = path::ReceiverPath::sampled(c, mc);
    const double est = tr.measure_mixer_iip3_dbm(path, noise, /*adaptive=*/true,
                                                 fast_opts());
    const double actual = path.mixer().actual_iip3_dbm();
    // Allow the analysis worst case plus a measurement floor.
    EXPECT_NEAR(est, actual, budget_adaptive + 1.0) << "instance " << i;
  }
}

TEST(Translator, AdaptiveIip3BeatsNominalOnGainSkewedPath) {
  // Force every post-mixer gain to its worst-case corner: the nominal-gain
  // computation inherits the full skew, the adaptive one only G_A's.
  auto c = cfg();
  c.mixer.conv_gain_db = stats::Uncertain::exact(11.0);         // +1 dB corner
  c.lpf.passband_gain_db = stats::Uncertain::exact(0.5);        // +0.5 dB corner
  const path::PathConfig nominal_cfg = cfg();
  const Translator tr(nominal_cfg);  // translator believes nominal gains
  const path::ReceiverPath skewed(c);
  stats::Rng n1(35), n2(36);
  const double est_adaptive =
      tr.measure_mixer_iip3_dbm(skewed, n1, true, fast_opts());
  const double est_nominal =
      tr.measure_mixer_iip3_dbm(skewed, n2, false, fast_opts());
  const double actual = skewed.mixer().actual_iip3_dbm();
  EXPECT_LT(std::abs(est_adaptive - actual), std::abs(est_nominal - actual));
}

TEST(Translator, TranslatedP1dbTracksActual) {
  const auto c = cfg();
  const Translator tr(c);
  stats::Rng mc(37), noise(38);
  const auto path = path::ReceiverPath::sampled(c, mc);
  const double est = tr.measure_mixer_p1db_dbm(path, noise, fast_opts());
  EXPECT_NEAR(est, path.mixer().actual_p1db_in_dbm(),
              tr.analyze_mixer_p1db().error.wc + 1.5);
}

TEST(Translator, TranslatedCutoffTracksActual) {
  const auto c = cfg();
  const Translator tr(c);
  stats::Rng mc(39), noise(40);
  const auto path = path::ReceiverPath::sampled(c, mc);
  const double est = tr.measure_lpf_cutoff_hz(path, noise, fast_opts());
  EXPECT_NEAR(est, path.lpf().actual_cutoff_hz(), 0.1 * c.lpf.cutoff_hz.nominal);
}

TEST(Translator, LoFrequencyErrorMeasured) {
  auto c = cfg();
  c.lo.freq_error_ppm = stats::Uncertain::exact(-6.0);
  const Translator tr(c);
  const path::ReceiverPath path(c);
  stats::Rng noise(41);
  const double est = tr.measure_lo_freq_error_ppm(path, noise, fast_opts());
  // Estimation floor is set by the LO phase noise over the record (~2 ppm).
  EXPECT_NEAR(est, -6.0, 2.5);
}

TEST(TranslationMethod, Names) {
  EXPECT_EQ(to_string(TranslationMethod::kComposition), "composition");
  EXPECT_EQ(to_string(TranslationMethod::kPropagation), "propagation");
  EXPECT_EQ(to_string(TranslationMethod::kDirectDft), "DFT required");
}

}  // namespace
}  // namespace msts::core
