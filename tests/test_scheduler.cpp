// Tests for the deterministic work-stealing scheduler (stats/scheduler.h):
// coverage at every width, help-first nested joins (deadlock-free down to a
// single worker), deterministic lowest-index exception propagation, steal
// accounting, shared-handle growth, and bit-identity of nested MC runs.
//
// Suite names start with "Sched" on purpose: the sanitizer leg's ctest
// regex (ROADMAP) picks these up for the TSan run.
#include "stats/scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/config.h"
#include "obs/registry.h"
#include "stats/parallel.h"
#include "stats/yield.h"

namespace msts::stats {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name = "MSTS_THREADS") : name_(name) {
    const char* v = std::getenv(name_);
    had_ = (v != nullptr);
    if (had_) saved_ = v;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(SchedScheduler, RunsEveryIndexExactlyOnceAtEveryWidth) {
  for (const int workers : {1, 2, 4, 8}) {
    Scheduler sched(workers);
    EXPECT_EQ(sched.workers(), workers);
    const std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    sched.run(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at width " << workers;
    }
  }
}

TEST(SchedScheduler, ZeroAndOneIndexShortCircuit) {
  Scheduler sched(2);
  std::atomic<int> calls{0};
  sched.run(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  sched.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(ran_on, caller);  // n == 1 runs inline on the calling thread
}

// The deadlock-freedom pin: nested run() from inside a task on a ONE-worker
// scheduler. The joining worker must drain the child set itself (help-first
// join) — a blocking join would deadlock here, and ctest's timeout would
// flag it.
TEST(SchedScheduler, WidthOneNestedSubmissionIsDeadlockFree) {
  Scheduler sched(1);
  std::vector<std::atomic<int>> hits(4 * 8);
  for (auto& h : hits) h.store(0);
  sched.run(4, [&](std::size_t outer) {
    sched.run(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

// Two levels of nesting at several widths, including deeper-than-width
// fan-outs: the help-first join must keep every level making progress.
TEST(SchedScheduler, DeepNestingCoversAllIndices) {
  for (const int workers : {1, 2, 4}) {
    Scheduler sched(workers);
    std::atomic<int> leaves{0};
    sched.run(3, [&](std::size_t) {
      sched.run(3, [&](std::size_t) {
        sched.run(5, [&](std::size_t) {
          leaves.fetch_add(1, std::memory_order_relaxed);
        });
      });
    });
    EXPECT_EQ(leaves.load(), 3 * 3 * 5) << "width " << workers;
  }
}

// Deterministic exception propagation: several indices throw, and at any
// width (any steal schedule) the *lowest* failing index's exception is the
// one rethrown.
TEST(SchedScheduler, LowestFailingIndexWinsAtEveryWidth) {
  for (const int workers : {1, 2, 8}) {
    Scheduler sched(workers);
    bool caught = false;
    try {
      sched.run(64, [](std::size_t i) {
        if (i == 12 || i == 33 || i == 40) {
          throw std::runtime_error("fail@" + std::to_string(i));
        }
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "fail@12") << "width " << workers;
    }
    EXPECT_TRUE(caught) << "width " << workers;
  }
}

// Steal accounting. A one-worker scheduler with an external caller forces a
// steal deterministically: the first chunk to execute blocks until the
// other chunk has run, and since the worker pops one chunk and blocks in
// it, the external joiner MUST steal the remaining chunk (its only way of
// acquiring work) for the rendezvous to complete. The bounded wait turns a
// broken steal path into a failure instead of a hang.
TEST(SchedScheduler, ExternalJoinerStealsAndIsCounted) {
  const obs::Config saved = obs::current_config();
  obs::Config cfg;
  cfg.metrics = true;
  obs::configure(cfg);
  (void)obs::Registry::instance().drain();

  {
    Scheduler sched(1);
    std::mutex mu;
    std::condition_variable cv;
    bool arrived[2] = {false, false};
    std::atomic<bool> timed_out{false};
    sched.run(2, [&](std::size_t i) {
      std::unique_lock<std::mutex> lock(mu);
      arrived[i] = true;
      cv.notify_all();
      if (!cv.wait_for(lock, std::chrono::seconds(20),
                       [&] { return arrived[1 - i]; })) {
        timed_out.store(true, std::memory_order_relaxed);
      }
    });
    EXPECT_FALSE(timed_out.load()) << "chunks did not overlap across threads";
  }

  std::uint64_t steals = 0;
  for (const auto& m : obs::Registry::instance().drain()) {
    if (m.name == "sched.steal") steals = m.count;
  }
  EXPECT_GE(steals, 1u);
  obs::configure(saved);
}

// The shared handle mirrors the old shared-pool contract: same instance for
// requests it can already serve, a bigger scheduler on growth, and the old
// handle stays fully usable for in-flight callers.
TEST(SchedScheduler, SharedHandleGrowsAndKeepsOldAlive) {
  const std::shared_ptr<Scheduler> a = Scheduler::shared(2);
  ASSERT_GE(a->workers(), 2);
  EXPECT_EQ(Scheduler::shared(1).get(), a.get());
  EXPECT_EQ(Scheduler::shared(a->workers()).get(), a.get());

  const std::shared_ptr<Scheduler> b = Scheduler::shared(a->workers() + 2);
  EXPECT_NE(b.get(), a.get());
  EXPECT_GE(b->workers(), a->workers() + 2);

  // The superseded scheduler still runs work for its remaining holders.
  std::atomic<int> count{0};
  a->run(32, [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 32);
}

// Concurrent external callers share one scheduler's workers; each caller's
// per-index results stay correct and complete.
TEST(SchedSchedulerConcurrent, ExternalCallersShareWorkers) {
  Scheduler sched(4);
  constexpr int kCallers = 3;
  constexpr std::size_t kN = 128;
  std::atomic<int> bad{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<int> out(kN, -1);
        sched.run(kN, [&](std::size_t i) { out[i] = c + static_cast<int>(i); });
        for (std::size_t i = 0; i < kN; ++i) {
          if (out[i] != c + static_cast<int>(i)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// parallel_for_index called from inside a scheduler task must route to the
// same scheduler (Scheduler::current()), not spawn a second one.
TEST(SchedSchedulerNested, CurrentIsSetInsideTasksOnly) {
  EXPECT_EQ(Scheduler::current(), nullptr);
  Scheduler sched(2);
  std::atomic<int> wrong{0};
  sched.run(4, [&](std::size_t) {
    if (Scheduler::current() != &sched) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(Scheduler::current(), nullptr);
}

// The end-to-end determinism pin for nested MC: evaluate_test_mc launched
// from inside scheduler tasks with inner threading enabled produces results
// bit-identical to the fully serial evaluation.
TEST(SchedSchedulerNested, NestedMcBitIdenticalToSerial) {
  EnvGuard guard;
  ::setenv("MSTS_THREADS", "4", 1);

  const Normal param{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  const auto model = ErrorModel::uniform(0.4);
  constexpr int kOuter = 4;
  constexpr int kTrials = 60000;

  TestOutcome serial[kOuter];
  for (int c = 0; c < kOuter; ++c) {
    Rng rng(5000 + c);
    serial[c] = evaluate_test_mc(param, spec, spec, model, rng, kTrials, 1);
  }

  std::atomic<int> mismatches{0};
  parallel_for_index(kOuter, 4, [&](std::size_t c) {
    Rng rng(5000 + static_cast<std::uint64_t>(c));
    // threads = 0 resolves to MSTS_THREADS=4 and, running inside a
    // scheduler task, submits the MC blocks as a nested task-set.
    const auto out = evaluate_test_mc(param, spec, spec, model, rng, kTrials, 0);
    const auto& ref = serial[c];
    if (out.yield != ref.yield || out.defect_rate != ref.defect_rate ||
        out.accept_rate != ref.accept_rate || out.yield_loss != ref.yield_loss ||
        out.fault_coverage_loss != ref.fault_coverage_loss) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace msts::stats
