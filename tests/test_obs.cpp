// Tests for the observability layer (src/obs): config / strict env parsing,
// the metric registry's deterministic merge, the trace buffer's deterministic
// drain order, JSON write + parse round-trips, bench report emission, and the
// disabled-mode contract (true no-op: no allocations on the hot path).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_report.h"
#include "obs/config.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "stats/parallel.h"
#include "stats/yield.h"

// Global operator new instrumentation for the no-allocation test. Counting
// is process-wide, so the test below single-threads itself and tolerates
// nothing: any allocation between the markers fails it.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace msts::obs {
namespace {

// Saves and restores the active obs configuration around a test.
class ConfigGuard {
 public:
  ConfigGuard() : saved_(current_config()) {}
  ~ConfigGuard() {
    configure(saved_);
    (void)trace_take();
    (void)spans_drain();
  }

 private:
  Config saved_;
};

class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name_);
    had_ = (v != nullptr);
    if (had_) saved_ = v;
  }
  ~EnvVarGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

Config make_config(bool metrics, bool trace) {
  Config c;
  c.metrics = metrics;
  c.trace = trace;
  return c;
}

// ---------------------------------------------------------------------------
// Config and strict env parsing
// ---------------------------------------------------------------------------

TEST(ObsConfig, ConfigureRoundTrip) {
  ConfigGuard guard;
  configure(make_config(true, false));
  EXPECT_TRUE(metrics_enabled());
  EXPECT_FALSE(trace_enabled());
  configure(make_config(false, true));
  EXPECT_FALSE(metrics_enabled());
  EXPECT_TRUE(trace_enabled());
  configure(make_config(false, false));
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(trace_enabled());
}

TEST(ObsConfig, EnvFlagAcceptsBooleanSpellingsOnly) {
  EnvVarGuard guard("MSTS_TEST_FLAG");
  ::unsetenv("MSTS_TEST_FLAG");
  EXPECT_FALSE(env_flag("MSTS_TEST_FLAG"));
  for (const char* t : {"1", "true", "TRUE", "on", "Yes"}) {
    ::setenv("MSTS_TEST_FLAG", t, 1);
    EXPECT_TRUE(env_flag("MSTS_TEST_FLAG")) << t;
  }
  for (const char* f : {"0", "false", "off", "NO", ""}) {
    ::setenv("MSTS_TEST_FLAG", f, 1);
    EXPECT_FALSE(env_flag("MSTS_TEST_FLAG")) << "'" << f << "'";
  }
  for (const char* bad : {"2", "maybe", "tru", "yes!"}) {
    ::setenv("MSTS_TEST_FLAG", bad, 1);
    EXPECT_THROW(env_flag("MSTS_TEST_FLAG"), std::invalid_argument) << bad;
  }
}

TEST(ObsConfig, EnvIntStrictness) {
  EnvVarGuard guard("MSTS_TEST_INT");
  ::unsetenv("MSTS_TEST_INT");
  EXPECT_FALSE(env_int("MSTS_TEST_INT", 1, 100).has_value());
  ::setenv("MSTS_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("MSTS_TEST_INT", 1, 100).value(), 42);
  for (const char* bad :
       {"0", "101", "-5", "4.2", "42x", "x", " ", "99999999999999999999"}) {
    ::setenv("MSTS_TEST_INT", bad, 1);
    EXPECT_THROW(env_int("MSTS_TEST_INT", 1, 100), std::invalid_argument)
        << "'" << bad << "'";
  }
  // The message names the variable, the value and the range.
  ::setenv("MSTS_TEST_INT", "banana", 1);
  try {
    (void)env_int("MSTS_TEST_INT", 1, 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("MSTS_TEST_INT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;
  }
}

TEST(ObsConfig, EnvDoubleStrictness) {
  EnvVarGuard guard("MSTS_TEST_DBL");
  ::unsetenv("MSTS_TEST_DBL");
  EXPECT_FALSE(env_double("MSTS_TEST_DBL", 0.0, 1.0).has_value());
  ::setenv("MSTS_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("MSTS_TEST_DBL", 0.0, 1.0).value(), 0.25);
  for (const char* bad : {"-0.1", "1.5", "nan", "inf", "0.2x", "x"}) {
    ::setenv("MSTS_TEST_DBL", bad, 1);
    EXPECT_THROW(env_double("MSTS_TEST_DBL", 0.0, 1.0), std::invalid_argument)
        << "'" << bad << "'";
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CountersTimersHistogramsCollectWhenEnabled) {
  ConfigGuard guard;
  configure(make_config(true, false));
  Registry::instance().reset();

  counter_add("t.counter", 2);
  counter_add("t.counter");
  timer_record_ns("t.timer", 100);
  timer_record_ns("t.timer", 300);
  histogram_record("t.hist", 0.5);
  histogram_record("t.hist", 2.0);
  histogram_record("t.hist", -1.0);

  const auto metrics = Registry::instance().snapshot();
  ASSERT_EQ(metrics.size(), 3u);  // sorted by name: counter, hist, timer
  EXPECT_EQ(metrics[0].name, "t.counter");
  EXPECT_EQ(metrics[0].kind, Metric::Kind::kCounter);
  EXPECT_EQ(metrics[0].count, 3u);

  EXPECT_EQ(metrics[1].name, "t.hist");
  EXPECT_EQ(metrics[1].kind, Metric::Kind::kHistogram);
  EXPECT_EQ(metrics[1].count, 3u);
  EXPECT_EQ(metrics[1].bins[histogram_bin_of(0.5)], 1u);
  EXPECT_EQ(metrics[1].bins[histogram_bin_of(2.0)], 1u);
  EXPECT_EQ(metrics[1].bins[0], 1u);  // non-positive sample

  EXPECT_EQ(metrics[2].name, "t.timer");
  EXPECT_EQ(metrics[2].kind, Metric::Kind::kTimer);
  EXPECT_EQ(metrics[2].count, 2u);
  EXPECT_EQ(metrics[2].total_ns, 400u);
  EXPECT_EQ(metrics[2].min_ns, 100u);
  EXPECT_EQ(metrics[2].max_ns, 300u);

  Registry::instance().reset();
  EXPECT_TRUE(Registry::instance().snapshot().empty());
}

TEST(ObsRegistry, NothingCollectsWhenDisabled) {
  ConfigGuard guard;
  configure(make_config(false, false));
  Registry::instance().reset();
  counter_add("t.off", 5);
  timer_record_ns("t.off.timer", 100);
  histogram_record("t.off.hist", 1.0);
  { ScopedTimer timer("t.off.scoped"); }
  EXPECT_TRUE(Registry::instance().snapshot().empty());
}

TEST(ObsRegistry, HistogramBinEdges) {
  // Bin 0: non-positive and non-finite.
  EXPECT_EQ(histogram_bin_of(0.0), 0u);
  EXPECT_EQ(histogram_bin_of(-3.0), 0u);
  // Powers of two land in consecutive bins; 1.0 = 2^0 -> bin 33.
  EXPECT_EQ(histogram_bin_of(1.0), 33u);
  EXPECT_EQ(histogram_bin_of(2.0), 34u);
  EXPECT_EQ(histogram_bin_of(0.5), 32u);
  EXPECT_EQ(histogram_bin_of(1.5), 33u);  // same bin as 1.0
  // Clamped at both ends.
  EXPECT_EQ(histogram_bin_of(1e-300), 1u);
  EXPECT_EQ(histogram_bin_of(1e300), 63u);
}

// The deterministic-merge half of the obs contract: identical per-index
// updates produce identical snapshots no matter how many threads made them.
TEST(ObsRegistry, MergedTotalsIndependentOfThreadCount) {
  ConfigGuard guard;
  configure(make_config(true, false));

  std::vector<Metric> snapshots[3];
  const int counts[] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    Registry::instance().reset();
    // Dedicated std::threads (not the shared pool): thread exit also
    // exercises the sink-retirement path.
    const int nthreads = counts[k];
    std::vector<std::thread> workers;
    for (int w = 0; w < nthreads; ++w) {
      workers.emplace_back([w, nthreads] {
        for (int i = w; i < 1024; i += nthreads) {
          counter_add("m.count", static_cast<std::uint64_t>(i));
          histogram_record("m.hist", static_cast<double>(i % 37) * 0.25);
          timer_record_ns("m.timer", static_cast<std::uint64_t>(100 + i % 7));
        }
      });
    }
    for (auto& t : workers) t.join();
    snapshots[k] = Registry::instance().snapshot();
  }

  for (int k = 1; k < 3; ++k) {
    ASSERT_EQ(snapshots[0].size(), snapshots[k].size());
    for (std::size_t i = 0; i < snapshots[0].size(); ++i) {
      const Metric& a = snapshots[0][i];
      const Metric& b = snapshots[k][i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.count, b.count) << a.name << " at " << counts[k] << " threads";
      EXPECT_EQ(a.bins, b.bins) << a.name;
      if (a.kind == Metric::Kind::kTimer) {
        // Durations are wall clock; only the deterministic fields compare.
        EXPECT_GT(b.total_ns, 0u);
      } else {
        EXPECT_EQ(a.total_ns, b.total_ns) << a.name;
      }
    }
  }
  Registry::instance().reset();
}

// The collect-and-clear contract (Registry::drain): with recorder threads
// starting, recording, and *exiting* while a concurrent drainer is running,
// every recorded count lands in exactly one drain — the sum over drains
// conserves the total. This is the service-loop usage pattern (periodic
// metric shipping) and pins the thread-exit retirement lifetime.
TEST(ObsRegistry, DrainConservesCountsAcrossThreadExitAndConcurrentDrains) {
  ConfigGuard guard;
  configure(make_config(true, false));
  Registry::instance().reset();

  constexpr int kRounds = 4;
  constexpr int kRecorders = 4;
  constexpr int kPerRecorder = 5000;
  const auto count_of = [](const std::vector<Metric>& metrics) {
    std::uint64_t total = 0;
    for (const Metric& m : metrics) {
      if (m.name == "drain.count") total += m.count;
    }
    return total;
  };

  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained.fetch_add(count_of(Registry::instance().drain()),
                        std::memory_order_relaxed);
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> recorders;
    for (int r = 0; r < kRecorders; ++r) {
      recorders.emplace_back([] {
        for (int i = 0; i < kPerRecorder; ++i) counter_add("drain.count");
      });
    }
    for (auto& t : recorders) t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  drained.fetch_add(count_of(Registry::instance().drain()),
                    std::memory_order_relaxed);

  EXPECT_EQ(drained.load(),
            std::uint64_t{kRounds} * kRecorders * kPerRecorder);
  // Drains cleared everything: nothing left for a snapshot to see.
  EXPECT_EQ(count_of(Registry::instance().snapshot()), 0u);
  Registry::instance().reset();
}

// ---------------------------------------------------------------------------
// Disabled mode is a true no-op: no allocations on the instrumented path.
// ---------------------------------------------------------------------------

TEST(ObsDisabled, InstrumentationDoesNotAllocate) {
  ConfigGuard guard;
  configure(make_config(false, false));

  // Warm up: first calls may lazily initialise env parsing state.
  counter_add("warmup");
  timer_record_ns("warmup", 1);
  histogram_record("warmup", 1.0);
  { ScopedTimer timer("warmup"); }

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter_add("hot.counter", 3);
    timer_record_ns("hot.timer", 17);
    histogram_record("hot.hist", 0.125);
    ScopedTimer timer("hot.scoped");
    if (trace_enabled()) {
      ADD_FAILURE() << "trace must be off here";
    }
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "disabled-mode instrumentation allocated";
}

// ---------------------------------------------------------------------------
// Trace buffer
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledEmitIsDropped) {
  ConfigGuard guard;
  configure(make_config(false, false));
  (void)trace_take();
  trace_emit({TraceKind::kPhase, "ignored", 0, {}});
  EXPECT_EQ(trace_pending(), 0u);
  EXPECT_TRUE(trace_take().empty());
}

TEST(ObsTrace, DrainSortsByKindLabelOrder) {
  ConfigGuard guard;
  configure(make_config(false, true));
  (void)trace_take();

  // Emit deliberately shuffled.
  trace_emit({TraceKind::kMcBlock, "b", 2, {}});
  trace_emit({TraceKind::kAttrStep, "z", 0, {{"v", std::int64_t{7}}}});
  trace_emit({TraceKind::kMcBlock, "a", 1, {}});
  trace_emit({TraceKind::kMcBlock, "a", 0, {}});
  trace_emit({TraceKind::kTranslation, "t", 0, {}});

  EXPECT_EQ(trace_pending(), 5u);
  const auto events = trace_take();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, TraceKind::kAttrStep);
  EXPECT_EQ(events[0].label, "z");
  EXPECT_EQ(events[1].kind, TraceKind::kTranslation);
  EXPECT_EQ(events[2].label, "a");
  EXPECT_EQ(events[2].order, 0u);
  EXPECT_EQ(events[3].label, "a");
  EXPECT_EQ(events[3].order, 1u);
  EXPECT_EQ(events[4].label, "b");
  EXPECT_EQ(trace_pending(), 0u);
}

TEST(ObsTrace, JsonlRendersOneValidObjectPerLine) {
  std::vector<TraceEvent> events;
  events.push_back({TraceKind::kAttrStep,
                    "mixer",
                    1,
                    {{"tones", std::int64_t{2}},
                     {"gain", 6.5},
                     {"ok", true},
                     {"origin", std::string("amp \"HD3\"")}}});
  events.push_back({TraceKind::kMcBlock, "mc", 0, {}});
  const std::string jsonl = trace_to_jsonl(events);

  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const auto nl = jsonl.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);  // every line newline-terminated
    lines.push_back(jsonl.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);

  std::string err;
  const auto first = json::parse(lines[0], &err);
  ASSERT_TRUE(first.has_value()) << err;
  EXPECT_EQ(first->find("kind")->string, "attr_step");
  EXPECT_EQ(first->find("label")->string, "mixer");
  EXPECT_EQ(first->find("order")->number, 1.0);
  EXPECT_EQ(first->find("tones")->number, 2.0);
  EXPECT_EQ(first->find("gain")->number, 6.5);
  EXPECT_TRUE(first->find("ok")->boolean);
  EXPECT_EQ(first->find("origin")->string, "amp \"HD3\"");

  const auto second = json::parse(lines[1], &err);
  ASSERT_TRUE(second.has_value()) << err;
  EXPECT_EQ(second->find("kind")->string, "mc_block");
}

// Multi-threaded traced MC: exercised under TSan by the sanitizer build, and
// checks the per-block events cover the trial range exactly once.
TEST(ObsTrace, TracedParallelMcEmitsOneEventPerBlock) {
  ConfigGuard guard;
  configure(make_config(true, true));
  (void)trace_take();

  const stats::Normal param{0.0, 1.0};
  const auto spec = stats::SpecLimits::at_least(-1.0);
  stats::Rng rng(77);
  const int trials = 50000;
  (void)stats::evaluate_test_mc(param, spec, spec, stats::ErrorModel::gaussian(0.1),
                                rng, trials, 4);

  const auto events = trace_take();
  const std::size_t nblocks = (trials + 8191) / 8192;
  ASSERT_EQ(events.size(), nblocks);
  std::int64_t expected_begin = 0;
  for (std::size_t b = 0; b < events.size(); ++b) {
    EXPECT_EQ(events[b].kind, TraceKind::kMcBlock);
    EXPECT_EQ(events[b].order, b);
    std::int64_t begin = -1, end = -1;
    for (const auto& [k, v] : events[b].fields) {
      if (k == "trial_begin") begin = std::get<std::int64_t>(v);
      if (k == "trial_end") end = std::get<std::int64_t>(v);
    }
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, trials);
  Registry::instance().reset();
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(ObsJson, WriterParserRoundTrip) {
  json::Writer w;
  w.begin_object();
  w.kv("name", "bench \"x\"\n");
  w.kv("count", std::int64_t{-42});
  w.kv("ratio", 0.1);
  w.kv("big", 1.2345678901234567e100);
  w.kv("flag", true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(std::int64_t{1}).value(2.5).value("three").value(false).null();
  w.end_array();
  w.key("nested").begin_object();
  w.kv("inner", std::uint64_t{18446744073709551615ull});
  w.end_object();
  w.end_object();

  std::string err;
  const auto v = json::parse(w.str(), &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << w.str();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("name")->string, "bench \"x\"\n");
  EXPECT_EQ(v->find("count")->number, -42.0);
  EXPECT_DOUBLE_EQ(v->find("ratio")->number, 0.1);
  EXPECT_DOUBLE_EQ(v->find("big")->number, 1.2345678901234567e100);
  EXPECT_TRUE(v->find("flag")->boolean);
  EXPECT_TRUE(v->find("missing")->is_null());
  const auto* list = v->find("list");
  ASSERT_TRUE(list != nullptr && list->is_array());
  ASSERT_EQ(list->array.size(), 5u);
  EXPECT_EQ(list->array[0].number, 1.0);
  EXPECT_EQ(list->array[2].string, "three");
  EXPECT_TRUE(list->array[4].is_null());
  const auto* nested = v->find("nested");
  ASSERT_TRUE(nested != nullptr && nested->is_object());
  EXPECT_DOUBLE_EQ(nested->find("inner")->number, 18446744073709551615.0);
}

TEST(ObsJson, DoublesSurviveRoundTripExactly) {
  for (const double x : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, -1.7976931348623157e308}) {
    json::Writer w;
    w.begin_object();
    w.kv("x", x);
    w.end_object();
    const auto v = json::parse(w.str());
    ASSERT_TRUE(v.has_value()) << w.str();
    EXPECT_EQ(v->find("x")->number, x) << w.str();
  }
}

TEST(ObsJson, NonFiniteWritesNull) {
  json::Writer w;
  w.begin_object();
  w.kv("nan", std::nan(""));
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.end_object();
  const auto v = json::parse(w.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->find("nan")->is_null());
  EXPECT_TRUE(v->find("inf")->is_null());
}

TEST(ObsJson, ParserRejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "}", "{\"a\":}", "[1,]", "{\"a\" 1}", "01",
                          "\"unterminated", "truex", "[1] trailing", "{\"a\":1,}",
                          "\"bad \\x escape\"", "nul"}) {
    std::string err;
    EXPECT_FALSE(json::parse(bad, &err).has_value()) << "'" << bad << "'";
    EXPECT_FALSE(err.empty()) << "'" << bad << "'";
  }
}

// Regression pin for the non-finite contract: the writer must never emit the
// bare tokens some printf paths produce for NaN/Inf (they are not JSON), and
// the strict parser must refuse them if a foreign tool writes one anyway.
TEST(ObsJson, ParserRejectsBareNonFiniteTokens) {
  for (const char* bad : {"nan", "inf", "-inf", "Infinity", "-Infinity", "NaN",
                          "{\"x\": nan}", "{\"x\": inf}", "[1, -nan(ind)]"}) {
    std::string err;
    EXPECT_FALSE(json::parse(bad, &err).has_value()) << "'" << bad << "'";
    EXPECT_FALSE(err.empty()) << "'" << bad << "'";
  }
}

TEST(ObsJson, ParserHandlesUnicodeEscapes) {
  const auto v = json::parse("\"a\\u00e9\\u4e2d\\n\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "a\xc3\xa9\xe4\xb8\xad\n");
}

TEST(ObsJson, ParserRejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json::parse(deep).has_value());
}

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

TEST(ObsBenchReport, WritesValidatableJson) {
  ConfigGuard guard;
  configure(make_config(false, false));
  EnvVarGuard dir_guard("MSTS_BENCH_JSON_DIR");
  EnvVarGuard scale_guard("MSTS_BENCH_SCALE");
  ::setenv("MSTS_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1);
  ::unsetenv("MSTS_BENCH_SCALE");

  std::string path;
  {
    BenchReport report("obs_selftest");
    path = report.json_path();
    std::remove(path.c_str());
    {
      auto p = report.phase("setup");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
    {
      auto p = report.phase("run");
    }
    report.add_scalar("yield", 0.875);
    report.add_scalar("trials", std::int64_t{1000});
    report.add_label("mode", "selftest");
    EXPECT_TRUE(report.write());
    EXPECT_GE(report.threads(), 1);
  }

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());

  std::string err;
  const auto v = json::parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << text;
  EXPECT_EQ(v->find("bench")->string, "obs_selftest");
  EXPECT_EQ(v->find("schema_version")->number, 1.0);
  EXPECT_GE(v->find("threads")->number, 1.0);
  EXPECT_EQ(v->find("scale")->number, 1.0);
  const auto* phases = v->find("phases");
  ASSERT_TRUE(phases != nullptr && phases->is_array());
  ASSERT_EQ(phases->array.size(), 2u);
  EXPECT_EQ(phases->array[0].find("name")->string, "setup");
  EXPECT_GE(phases->array[0].find("wall_s")->number, 0.0);
  EXPECT_EQ(phases->array[1].find("name")->string, "run");
  EXPECT_GE(v->find("total_wall_s")->number, 0.0);
  EXPECT_EQ(v->find("scalars")->find("yield")->number, 0.875);
  EXPECT_EQ(v->find("scalars")->find("trials")->number, 1000.0);
  EXPECT_EQ(v->find("labels")->find("mode")->string, "selftest");
}

// A bench that computes a non-finite scalar (e.g. 0/0 from an empty phase)
// must still emit a parseable report: the value arrives as JSON null, which
// bench_validate then flags with a targeted message instead of the file
// failing to parse at all.
TEST(ObsBenchReport, NonFiniteScalarSerializesAsNull) {
  ConfigGuard guard;
  configure(make_config(false, false));
  EnvVarGuard dir_guard("MSTS_BENCH_JSON_DIR");
  EnvVarGuard scale_guard("MSTS_BENCH_SCALE");
  ::setenv("MSTS_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1);
  ::unsetenv("MSTS_BENCH_SCALE");

  std::string path;
  {
    BenchReport report("obs_nonfinite_selftest");
    path = report.json_path();
    std::remove(path.c_str());
    report.add_scalar("bad_rate", std::nan(""));
    report.add_scalar("bad_ratio", std::numeric_limits<double>::infinity());
    report.add_scalar("good", 1.0);
    EXPECT_TRUE(report.write());
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());

  std::string err;
  const auto v = json::parse(buf.str(), &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << buf.str();
  EXPECT_TRUE(v->find("scalars")->find("bad_rate")->is_null());
  EXPECT_TRUE(v->find("scalars")->find("bad_ratio")->is_null());
  EXPECT_EQ(v->find("scalars")->find("good")->number, 1.0);
}

TEST(ObsBenchReport, ScaledHelpers) {
  EnvVarGuard scale_guard("MSTS_BENCH_SCALE");
  ::unsetenv("MSTS_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  EXPECT_EQ(scaled_trials(1000, 10), 1000u);
  EXPECT_EQ(scaled_record(8192, 256), 8192u);
  EXPECT_EQ(scaled_stride(3), 3u);

  ::setenv("MSTS_BENCH_SCALE", "0.1", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.1);
  EXPECT_EQ(scaled_trials(1000, 10), 100u);
  EXPECT_EQ(scaled_trials(50, 10), 10u);  // floored at min
  EXPECT_EQ(scaled_record(8192, 256), 512u);  // power of two preserved
  EXPECT_EQ(scaled_record(512, 256), 256u);
  EXPECT_EQ(scaled_stride(3), 30u);

  for (const char* bad : {"0", "-1", "1.5", "x"}) {
    ::setenv("MSTS_BENCH_SCALE", bad, 1);
    EXPECT_THROW(bench_scale(), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Spans: gating, nesting, cross-thread conservation, exporters. The Span*
// suites also run under the TSan tier-1 leg (see ROADMAP.md).
// ---------------------------------------------------------------------------

TEST(ObsSpanConfig, TracePathRequiresTraceOn) {
  ConfigGuard guard;
  Config c;
  c.trace = false;
  c.trace_path = ::testing::TempDir() + "/span_cfg_trace.json";
  EXPECT_THROW(configure(c), std::invalid_argument);

  c.trace = true;
  configure(c);  // writable path with trace on: accepted
  EXPECT_EQ(trace_path(), c.trace_path);
  EXPECT_EQ(current_config().trace_path, c.trace_path);

  c.trace_path = "/nonexistent-msts-dir/trace.json";
  EXPECT_THROW(configure(c), std::invalid_argument);

  c.trace_path.clear();
  configure(c);  // empty path is always fine
  EXPECT_EQ(trace_path(), "");
}

TEST(ObsSpanConfig, FromEnvParsesTracePathStrictly) {
  ConfigGuard guard;
  EnvVarGuard trace_guard("MSTS_TRACE");
  EnvVarGuard path_guard("MSTS_TRACE_PATH");
  EnvVarGuard metrics_guard("MSTS_METRICS");
  ::unsetenv("MSTS_METRICS");

  const std::string good = ::testing::TempDir() + "/span_env_trace.json";

  // Path without the switch: fail fast, same contract as malformed
  // MSTS_THREADS.
  ::unsetenv("MSTS_TRACE");
  ::setenv("MSTS_TRACE_PATH", good.c_str(), 1);
  EXPECT_THROW(Config::from_env(), std::invalid_argument);

  // Unwritable path with the switch on: fail fast too.
  ::setenv("MSTS_TRACE", "1", 1);
  ::setenv("MSTS_TRACE_PATH", "/nonexistent-msts-dir/trace.json", 1);
  EXPECT_THROW(Config::from_env(), std::invalid_argument);

  // Well-formed combination round-trips.
  ::setenv("MSTS_TRACE_PATH", good.c_str(), 1);
  const Config c = Config::from_env();
  EXPECT_TRUE(c.trace);
  EXPECT_EQ(c.trace_path, good);

  // Empty value behaves like unset.
  ::setenv("MSTS_TRACE_PATH", "", 1);
  EXPECT_EQ(Config::from_env().trace_path, "");
}

TEST(ObsSpanDisabled, SpansAreFreeWhenTracingOff) {
  ConfigGuard guard;
  configure(make_config(false, false));
  (void)spans_drain();

  // Warm up thread-local state outside the measured window.
  { Span warm("warmup"); }

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    Span s("hot.span");
    s.note("k", std::int64_t{1});
    s.note("v", 2.0);
    SpanParentScope scope(s.id());
    if (s.armed() || s.id() != 0 || Span::current() != 0) {
      ADD_FAILURE() << "span must be disarmed while tracing is off";
    }
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "disabled-mode spans allocated";
  EXPECT_TRUE(spans_drain().empty());
}

TEST(ObsSpan, NestsViaThreadLocalCursorAndRestoresIt) {
  ConfigGuard guard;
  configure(make_config(false, true));
  (void)spans_drain();

  SpanId outer_id = 0;
  SpanId inner_id = 0;
  {
    Span outer("outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(Span::current(), outer_id);
    {
      Span inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(Span::current(), inner_id);
      inner.note("depth", std::int64_t{2});
    }
    EXPECT_EQ(Span::current(), outer_id);
  }
  EXPECT_EQ(Span::current(), 0u);

  const auto spans = spans_drain();
  ASSERT_EQ(spans.size(), 2u);
  // Drain sorts by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, outer_id);
  EXPECT_EQ(spans[1].id, inner_id);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  ASSERT_EQ(spans[1].note_count, 1u);
  EXPECT_STREQ(spans[1].notes[0].key, "depth");
  EXPECT_EQ(spans[1].notes[0].i, 2);
  // The inner span closed first, so it cannot outlast the outer one.
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

// The scheduler's span tree under an enclosing request span:
//   test.request -> stats.parallel_for -> sched.run -> sched.task*
// Every sched.task parents under the sched.run even when it executed on a
// stolen chunk on another thread, and the task "count" notes add up to the
// full index range. A two-index rendezvous (first and last index block
// until both have arrived) forces at least two distinct threads into the
// region, so the cross-thread parenting is actually exercised.
TEST(ObsSpan, ParallelForTasksParentUnderRegionAcrossThreads) {
  ConfigGuard guard;
  configure(make_config(false, true));
  (void)spans_drain();

  constexpr std::size_t kN = 64;
  std::atomic<std::uint64_t> touched{0};
  std::mutex mu;
  std::condition_variable cv;
  bool arrived[2] = {false, false};
  std::atomic<bool> timed_out{false};
  {
    Span request("test.request");
    stats::parallel_for_index(kN, 4, [&](std::size_t i) {
      touched.fetch_add(1, std::memory_order_relaxed);
      if (i != 0 && i != kN - 1) return;
      const int slot = i == 0 ? 0 : 1;
      std::unique_lock<std::mutex> lock(mu);
      arrived[slot] = true;
      cv.notify_all();
      if (!cv.wait_for(lock, std::chrono::seconds(20),
                       [&] { return arrived[1 - slot]; })) {
        timed_out.store(true, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(touched.load(), kN);
  EXPECT_FALSE(timed_out.load()) << "rendezvous indices did not overlap";

  const auto spans = spans_drain();
  const SpanRecord* request_rec = nullptr;
  const SpanRecord* region = nullptr;
  const SpanRecord* run = nullptr;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == "test.request") request_rec = &s;
    if (std::string_view(s.name) == "stats.parallel_for") region = &s;
    if (std::string_view(s.name) == "sched.run") run = &s;
  }
  ASSERT_NE(request_rec, nullptr);
  ASSERT_NE(region, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(region->parent, request_rec->id);
  EXPECT_EQ(run->parent, region->id);

  std::int64_t indices = 0;
  std::size_t tasks = 0;
  bool multi_thread = false;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) != "sched.task") continue;
    ++tasks;
    // Every task parents under the run even when it executed on a worker
    // thread that had no thread-local cursor of its own.
    EXPECT_EQ(s.parent, run->id);
    if (s.tid != region->tid) multi_thread = true;
    for (std::uint8_t i = 0; i < s.note_count; ++i) {
      if (std::string_view(s.notes[i].key) == "count") indices += s.notes[i].i;
    }
  }
  ASSERT_GE(tasks, 2u);
  EXPECT_LE(tasks, 16u);  // at most 4 chunks per worker
  EXPECT_EQ(indices, static_cast<std::int64_t>(kN));
  EXPECT_TRUE(multi_thread) << "expected at least one task on a worker thread";
}

TEST(ObsSpan, DrainConservesAcrossThreadExitAndOverflow) {
  ConfigGuard guard;
  configure(make_config(false, true));
  (void)spans_drain();

  // Over-fill one short-lived thread's ring: the overflow must be counted,
  // and retirement at thread exit must hand the survivors to the drain.
  const std::size_t cap = span_ring_capacity();
  const std::size_t extra = 100;
  constexpr int kThreads = 3;
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&] {
      for (std::size_t i = 0; i < cap + extra; ++i) {
        Span s("conserve.span");
      }
    });
  }
  for (auto& t : emitters) t.join();

  const std::uint64_t dropped = spans_dropped();
  const auto spans = spans_drain();
  std::size_t ours = 0;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == "conserve.span") ++ours;
  }
  EXPECT_EQ(ours + dropped, std::uint64_t{kThreads} * (cap + extra));
  EXPECT_GE(dropped, std::uint64_t{kThreads} * extra);
  // Drained everything: a second drain sees nothing and the drop counter
  // was reset by the first drain.
  EXPECT_TRUE(spans_drain().empty());
  EXPECT_EQ(spans_dropped(), 0u);
}

TEST(ObsSpan, RecordBetweenClampsLikeServiceTimers) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  SpanRecord fwd = span_record_between("stage", 7, 3, false, t0, t1);
  EXPECT_EQ(fwd.id, 7u);
  EXPECT_EQ(fwd.parent, 3u);
  EXPECT_EQ(fwd.dur_ns, 250000u);
  // Reversed endpoints clamp to zero, exactly like the engine's ns_between.
  SpanRecord rev = span_record_between("stage", 8, 3, true, t1, t0);
  EXPECT_EQ(rev.dur_ns, 0u);
  EXPECT_TRUE(rev.async);
}

TEST(ObsSpanExport, ChromeJsonParsesAndAsyncPairsBalance) {
  std::vector<SpanRecord> spans;
  const auto t0 = span_epoch() + std::chrono::milliseconds(1);
  const auto t1 = t0 + std::chrono::microseconds(500);

  SpanRecord root = span_record_between("service.request", 10, 0, true, t0, t1);
  SpanRecord wait = span_record_between("service.queue_wait", 11, 10, true, t0,
                                        t0 + std::chrono::microseconds(100));
  SpanRecord exec = span_record_between("service.execute", 12, 10, false,
                                        t0 + std::chrono::microseconds(100), t1);
  SpanNote note;
  note.key = "cache_hit";
  note.type = SpanNote::Type::kInt;
  note.i = 1;
  exec.notes[exec.note_count++] = note;
  spans = {root, wait, exec};

  const std::string json_text = spans_to_chrome_json(spans);
  std::string err;
  const auto doc = json::parse(json_text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // 1 metadata + 2 async pairs (b+e each) + 1 complete slice.
  ASSERT_EQ(events->array.size(), 6u);
  int x_slices = 0;
  int balance = 0;
  for (const json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "X") {
      ++x_slices;
      EXPECT_EQ(e.find("name")->string, "service.execute");
      EXPECT_DOUBLE_EQ(e.find("dur")->number, 400.0);  // microseconds
      EXPECT_EQ(e.find("args")->find("cache_hit")->number, 1.0);
      EXPECT_EQ(e.find("args")->find("parent")->number, 10.0);
    } else if (ph == "b") {
      ++balance;
      // One-level async children share the parent's id, landing on its track.
      EXPECT_EQ(e.find("id")->string, "0xa");
    } else if (ph == "e") {
      --balance;
      EXPECT_GE(balance, 0);
    }
  }
  EXPECT_EQ(x_slices, 1);
  EXPECT_EQ(balance, 0);
}

TEST(ObsSpanAttribution, AggregatesByStageWithQuantiles) {
  std::vector<SpanRecord> spans;
  const auto mk = [](const char* name, std::uint64_t dur_ns) {
    SpanRecord r;
    r.name = name;
    r.id = 1;
    r.dur_ns = dur_ns;
    return r;
  };
  for (int i = 0; i < 90; ++i) spans.push_back(mk("fast", 1000));
  for (int i = 0; i < 10; ++i) spans.push_back(mk("fast", 1000000));
  spans.push_back(mk("slow", 5000000));

  const auto stages = latency_attribution(spans);
  ASSERT_EQ(stages.size(), 2u);
  // Sorted by total time: fast contributes 90us + 10ms, slow 5ms... fast
  // first (10.09ms > 5ms).
  EXPECT_EQ(stages[0].name, "fast");
  EXPECT_EQ(stages[0].count, 100u);
  EXPECT_EQ(stages[0].total_ns, 90u * 1000 + 10u * 1000000);
  EXPECT_EQ(stages[0].min_ns, 1000u);
  EXPECT_EQ(stages[0].max_ns, 1000000u);
  EXPECT_EQ(stages[1].name, "slow");
  EXPECT_EQ(stages[1].count, 1u);

  // p50 lands in the 1us population, p99 in the 1ms tail; both clamp inside
  // [min, max].
  const double p50 = attribution_quantile_ns(stages[0], 0.50);
  const double p99 = attribution_quantile_ns(stages[0], 0.99);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LT(p50, 10000.0);
  EXPECT_GT(p99, 100000.0);
  EXPECT_LE(p99, 1000000.0);

  const std::string text = attribution_to_text(stages);
  EXPECT_NE(text.find("fast"), std::string::npos);
  EXPECT_NE(text.find("slow"), std::string::npos);
}

TEST(ObsSpanExport, FlushToTracePathWritesValidChromeFile) {
  ConfigGuard guard;
  const std::string path = ::testing::TempDir() + "/span_flush_trace.json";
  Config c;
  c.trace = true;
  c.trace_path = path;
  configure(c);
  (void)spans_drain();

  {
    Span outer("flush.outer");
    Span inner("flush.inner");
  }
  const std::size_t written = spans_flush_to_trace_path();
  EXPECT_EQ(written, 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json::parse(buf.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_TRUE(doc->find("traceEvents")->is_array());
  // Flushing drained the buffers.
  EXPECT_TRUE(spans_drain().empty());
}

// Determinism contract: span collection must never perturb numbers. The MC
// evaluator gives bit-identical results with tracing on at any thread count.
TEST(ObsSpanMc, ResultsBitIdenticalAcrossThreadCountsWithSpans) {
  ConfigGuard guard;

  const stats::Normal param{0.0, 1.0};
  const auto spec = stats::SpecLimits::at_least(-1.0);
  const auto run = [&](int threads, bool traced) {
    configure(make_config(false, traced));
    stats::Rng rng(123);
    const auto out = stats::evaluate_test_mc(param, spec, spec,
                                             stats::ErrorModel::gaussian(0.1),
                                             rng, 30000, threads);
    (void)spans_drain();
    return out;
  };

  const auto baseline = run(1, false);
  for (const int threads : {1, 2, 8}) {
    const auto traced = run(threads, true);
    EXPECT_EQ(std::memcmp(&baseline, &traced, sizeof baseline), 0)
        << "spans perturbed MC results at " << threads << " threads";
  }
}

}  // namespace
}  // namespace msts::obs
