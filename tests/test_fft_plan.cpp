// Equivalence and concurrency tests for the planned FFT kernels
// (dsp/fft_plan.h) and the recurrence oscillators (dsp/oscillator.h).
//
// The ground truth throughout is the naive O(N^2) DFT evaluated with library
// trig at every (n, k) product — slow but with no shared state and no
// recurrence, so any systematic error in the planned kernels shows up as a
// mismatch here.
#include "dsp/fft_plan.h"

#include <atomic>
#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/units.h"
#include "dsp/fft.h"
#include "dsp/oscillator.h"

namespace msts::dsp {
namespace {

// Naive forward DFT: X[k] = sum_n x[n] exp(-j 2 pi n k / N).
std::vector<std::complex<double>> naive_dft(const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = -kTwoPi * static_cast<double>(i) * static_cast<double>(k) /
                       static_cast<double>(n);
      acc += x[i] * std::complex<double>(std::cos(a), std::sin(a));
    }
    out[k] = acc;
  }
  return out;
}

// Deterministic test record with non-trivial magnitude and phase content:
// several incommensurate tones at distinct phases plus a DC offset.
std::vector<std::complex<double>> make_signal(std::size_t n, bool complex_part) {
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double re = 0.4 + 1.3 * std::cos(0.731 * t + 0.21) +
                      0.7 * std::sin(2.113 * t - 1.04) + 0.05 * std::cos(2.9 * t + 2.5);
    const double im =
        complex_part ? 0.9 * std::sin(1.377 * t + 0.77) - 0.3 * std::cos(0.19 * t) : 0.0;
    x[i] = {re, im};
  }
  return x;
}

double relative_error(const std::vector<std::complex<double>>& got,
                      const std::vector<std::complex<double>>& want) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t k = 0; k < want.size(); ++k) {
    num += std::norm(got[k] - want[k]);
    den += std::norm(want[k]);
  }
  return std::sqrt(num / std::max(den, 1e-300));
}

class PlanVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanVsNaive, ComplexForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = make_signal(n, /*complex_part=*/true);
  const auto want = naive_dft(x);

  auto got = x;
  const auto plan = get_fft_plan(n);
  ASSERT_EQ(plan->size(), n);
  plan->forward(got.data());
  EXPECT_LE(relative_error(got, want), 1e-9) << "n=" << n;
}

TEST_P(PlanVsNaive, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const auto x = make_signal(n, /*complex_part=*/true);
  auto y = x;
  const auto plan = get_fft_plan(n);
  plan->forward(y.data());
  plan->inverse(y.data());
  EXPECT_LE(relative_error(y, x), 1e-11) << "n=" << n;
}

TEST_P(PlanVsNaive, RealForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto xc = make_signal(n, /*complex_part=*/false);
  std::vector<double> xr(n);
  for (std::size_t i = 0; i < n; ++i) xr[i] = xc[i].real();
  const auto full = naive_dft(xc);

  const auto plan = get_rfft_plan(n);
  ASSERT_EQ(plan->num_bins(), n / 2 + 1);
  std::vector<std::complex<double>> got(plan->num_bins());
  plan->forward(xr.data(), got.data());

  std::vector<std::complex<double>> want(full.begin(), full.begin() + n / 2 + 1);
  EXPECT_LE(relative_error(got, want), 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanVsNaive,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 64, 256, 1024, 4096));

TEST(PlanVsNaive, RfftFreeFunctionUsesThePlannedPath) {
  // rfft() is the public entry point Spectrum uses; pin it to the plan result.
  const std::size_t n = 512;
  const auto xc = make_signal(n, false);
  std::vector<double> xr(n);
  for (std::size_t i = 0; i < n; ++i) xr[i] = xc[i].real();

  const auto via_free = rfft(xr);
  const auto plan = get_rfft_plan(n);
  std::vector<std::complex<double>> via_plan(plan->num_bins());
  plan->forward(xr.data(), via_plan.data());
  for (std::size_t k = 0; k < via_plan.size(); ++k) {
    EXPECT_EQ(via_free[k], via_plan[k]) << "bin " << k;
  }
}

// ---------------------------------------------------------------------------
// Goertzel single_bin_dft vs the naive correlation it replaced.

std::complex<double> naive_single_bin(const std::vector<double>& x, double freq,
                                      double fs) {
  const double w = kTwoPi * freq / fs;
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = -w * static_cast<double>(i);
    acc += x[i] * std::complex<double>(std::cos(a), std::sin(a));
  }
  const double nyquist = fs / 2.0;
  const bool self_mirrored = freq == 0.0 || freq == nyquist;
  return acc * ((self_mirrored ? 1.0 : 2.0) / static_cast<double>(x.size()));
}

TEST(GoertzelVsNaive, DcNyquistAndMidBandAgree) {
  const double fs = 4.0e6;
  const std::size_t n = 12000;  // non-power-of-two: Goertzel path only
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.25 + 1.1 * std::cos(kTwoPi * 311.0e3 * t + 0.4) +
           0.3 * std::cos(kTwoPi * 977.0e3 * t - 1.2) +
           0.02 * ((i % 2 == 0) ? 1.0 : -1.0);  // Nyquist component
  }
  const double probes[] = {0.0, fs / 2.0, 311.0e3, 977.0e3, 1.5e6, 13.0e3};
  for (double f : probes) {
    const auto got = single_bin_dft(x, f, fs);
    const auto want = naive_single_bin(x, f, fs);
    EXPECT_LE(std::abs(got - want), 1e-9 * (1.0 + std::abs(want)))
        << "freq " << f;
  }
}

TEST(GoertzelVsNaive, LongRecordStaysInsideTolerance) {
  // Error growth is the reason the implementation re-anchors per block; check
  // a record much longer than one block at an awkward near-DC frequency.
  const double fs = 1.0e6;
  const std::size_t n = 100000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = std::cos(kTwoPi * 170.0 * t + 1.0) + 0.5 * std::cos(kTwoPi * 120.0e3 * t);
  }
  for (double f : {170.0, 120.0e3}) {
    const auto got = single_bin_dft(x, f, fs);
    const auto want = naive_single_bin(x, f, fs);
    EXPECT_LE(std::abs(got - want), 1e-9 * (1.0 + std::abs(want))) << "freq " << f;
  }
}

// ---------------------------------------------------------------------------
// Recurrence oscillators vs per-sample library trig.
//
// The reference phase is reduced mod 2 pi in long double before taking the
// cosine: the plain product omega * i rounds to ~5e-10 rad at i ~ 1e6, so a
// naive double reference would itself be two orders outside the 1e-12
// contract and the comparison would only measure the reference's error.

double true_carrier_phase(double omega, std::size_t i) {
  constexpr long double kTwoPiL = 6.283185307179586476925286766559005768L;
  const long double ph =
      std::fmod(static_cast<long double>(omega) * static_cast<long double>(i), kTwoPiL);
  return static_cast<double>(ph);
}

TEST(OscillatorDrift, MillionSampleStreamStaysWithin1em12) {
  const double omega = kTwoPi * 10.4e6 / 32.0e6;  // reference-path LO pitch
  const double phase = 0.37;
  PhasorOscillator osc(omega, phase);
  const std::size_t n = 1'200'000;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double want = std::cos(true_carrier_phase(omega, i) + phase);
    worst = std::max(worst, std::abs(osc.cos_next() - want));
  }
  EXPECT_LE(worst, 1e-12);
}

TEST(OscillatorDrift, AddCosineMatchesTrigOverMillionSamples) {
  const double omega = kTwoPi * 0.1031;
  const double phase = -0.81;
  const double amp = 2.3;
  const std::size_t n = 1'048'576 + 3;  // exercise the lane tail as well
  std::vector<double> x(n, 0.5);
  add_cosine(x.data(), n, omega, phase, amp);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double want = 0.5 + amp * std::cos(true_carrier_phase(omega, i) + phase);
    worst = std::max(worst, std::abs(x[i] - want));
  }
  EXPECT_LE(worst, amp * 1e-12);
}

TEST(OscillatorDrift, PhaseJitterFoldsIntoResync) {
  // Deterministic pseudo-jitter: the oscillator must track the exact
  // accumulated phase, not just the nominal ramp. `extra` accumulates with
  // the same plain-double additions as the oscillator, so the two walks are
  // bitwise identical and only carrier drift remains.
  const double omega = 0.31;
  PhasorOscillator osc(omega, 0.1);
  double extra = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < 200000; ++i) {
    const double jitter = 1e-4 * std::sin(0.001 * static_cast<double>(i));
    osc.advance_phase(jitter);
    extra += jitter;
    const double want = std::cos(true_carrier_phase(omega, i) + (0.1 + extra));
    worst = std::max(worst, std::abs(osc.cos_next() - want));
  }
  EXPECT_LE(worst, 1e-12);
}

TEST(OscillatorDrift, JitterCosNextMatchesTwoCallForm) {
  // The fused jitter+carrier rotation must track the exact accumulated phase
  // to the same bound as the advance_phase/cos_next pair: its extra rounding
  // (one rotation-product rounding per sample) is folded back to exact trig
  // at every resync like any other per-step error.
  const double omega = 0.31;
  PhasorOscillator osc(omega, 0.1);
  double extra = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < 200000; ++i) {
    const double jitter = 1e-4 * std::sin(0.001 * static_cast<double>(i));
    const double got = osc.jitter_cos_next(jitter);
    extra += jitter;
    const double want = std::cos(true_carrier_phase(omega, i) + (0.1 + extra));
    worst = std::max(worst, std::abs(got - want));
  }
  EXPECT_LE(worst, 1e-12);
}

TEST(OscillatorDrift, UnitPhasorSmallAngleIsExact) {
  for (double a : {0.0, 1e-9, -3e-7, 5e-4, -9.9e-4, 0.02, -1.3}) {
    const auto p = unit_phasor(a);
    EXPECT_NEAR(p.real(), std::cos(a), 1e-15) << "angle " << a;
    EXPECT_NEAR(p.imag(), std::sin(a), 1e-15) << "angle " << a;
  }
}

// ---------------------------------------------------------------------------
// Plan cache: concurrent lookups must hand every thread the same immutable
// plan, and concurrent execution through shared plans must be clean under
// TSan (this test is in the sanitizer target list; see ROADMAP.md).

TEST(PlanCache, ConcurrentLookupsShareOnePlanPerSize) {
  constexpr int kThreads = 8;
  static constexpr std::size_t kSizes[] = {64, 128, 256, 512, 1024};
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const FftPlan>> first(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ready, &first] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        // spin so every thread races the same cold/warm cache
      }
      for (int round = 0; round < 50; ++round) {
        for (std::size_t n : kSizes) {
          auto plan = get_fft_plan(n);
          ASSERT_EQ(plan->size(), n);
          if (round == 0 && n == kSizes[0]) first[static_cast<std::size_t>(t)] = plan;
          // Execute through the shared plan to expose data races in forward().
          std::vector<std::complex<double>> x(n, {1.0, -0.5});
          plan->forward(x.data());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first[static_cast<std::size_t>(t)].get(), first[0].get())
        << "thread " << t << " got a different 64-point plan";
  }
}

TEST(PlanCache, ConcurrentRfftAndWindowLookups) {
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int round = 0; round < 30; ++round) {
        for (std::size_t n : {std::size_t{128}, std::size_t{512}, std::size_t{2048}}) {
          const auto rp = get_rfft_plan(n);
          const auto wp = get_window_plan(n, WindowType::kHann);
          ASSERT_EQ(rp->size(), n);
          ASSERT_EQ(wp->samples.size(), n);
          std::vector<double> x(n);
          for (std::size_t i = 0; i < n; ++i) x[i] = wp->samples[i];
          std::vector<std::complex<double>> bins(rp->num_bins());
          rp->forward(x.data(), bins.data());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(PlanCache, WindowPlanMatchesWindowFunctions) {
  const std::size_t n = 1024;
  for (auto type :
       {WindowType::kRectangular, WindowType::kHann, WindowType::kBlackmanHarris4}) {
    const auto wp = get_window_plan(n, type);
    const auto direct = make_window(n, type);
    ASSERT_EQ(wp->samples.size(), direct.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(wp->samples[i], direct[i]);
    EXPECT_DOUBLE_EQ(wp->coherent_gain, coherent_gain(type, n));
    EXPECT_DOUBLE_EQ(wp->enbw_bins, equivalent_noise_bandwidth(type, n));
  }
}

}  // namespace
}  // namespace msts::dsp
