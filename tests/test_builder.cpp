// Tests for the structural arithmetic builders (digital/builder.h): every
// generated datapath is validated exhaustively or randomly against int64
// arithmetic.
#include "digital/builder.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace msts::digital {
namespace {

// Evaluates a combinational bus function for a single input value.
std::int64_t eval_bus(const Netlist& nl, const Bus& in, const Bus& out,
                      std::int64_t x) {
  ParallelSimulator sim(nl);
  sim.set_bus(in, x);
  sim.eval();
  return sim.bus_value(out, 0);
}

TEST(Builder, ConstantBusHoldsValue) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus c = b.constant_bus(-42, 8);
  ParallelSimulator sim(nl);
  sim.eval();
  EXPECT_EQ(sim.bus_value(c, 0), -42);
}

TEST(Builder, FullAdderTruthTable) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId bb = nl.add_input("b");
  const NetId c = nl.add_input("c");
  NetlistBuilder b(nl);
  NetId cout = 0;
  const NetId sum = b.full_adder(a, bb, c, &cout, "fa");
  ParallelSimulator sim(nl);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      for (int cv = 0; cv <= 1; ++cv) {
        sim.set_input(a, av != 0);
        sim.set_input(bb, bv != 0);
        sim.set_input(c, cv != 0);
        sim.eval();
        const int total = av + bv + cv;
        EXPECT_EQ(sim.value_in_machine(sum, 0), (total & 1) != 0);
        EXPECT_EQ(sim.value_in_machine(cout, 0), total >= 2);
      }
    }
  }
}

TEST(Builder, AdditionExhaustive6Bit) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 6);
  const Bus y = b.input_bus("y", 6);
  const Bus s = b.add(x, y, "s");
  ParallelSimulator sim(nl);
  for (std::int64_t xv = -32; xv < 32; ++xv) {
    for (std::int64_t yv = -32; yv < 32; ++yv) {
      sim.set_bus(x, xv);
      sim.set_bus(y, yv);
      sim.eval();
      ASSERT_EQ(sim.bus_value(s, 0), xv + yv) << xv << "+" << yv;
    }
  }
}

TEST(Builder, SubtractionExhaustive5Bit) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 5);
  const Bus y = b.input_bus("y", 5);
  const Bus d = b.subtract(x, y, "d");
  ParallelSimulator sim(nl);
  for (std::int64_t xv = -16; xv < 16; ++xv) {
    for (std::int64_t yv = -16; yv < 16; ++yv) {
      sim.set_bus(x, xv);
      sim.set_bus(y, yv);
      sim.eval();
      ASSERT_EQ(sim.bus_value(d, 0), xv - yv) << xv << "-" << yv;
    }
  }
}

TEST(Builder, NegateExhaustive) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 6);
  const Bus n = b.negate(x, "n");
  for (std::int64_t v = -32; v < 32; ++v) {
    EXPECT_EQ(eval_bus(nl, x, n, v), -v);
  }
}

TEST(Builder, ShiftLeftMultipliesByPowerOfTwo) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 6);
  const Bus s = b.shift_left(x, 3);
  for (std::int64_t v : {-32ll, -1ll, 0ll, 5ll, 31ll}) {
    EXPECT_EQ(eval_bus(nl, x, s, v), v * 8);
  }
}

TEST(Builder, SignExtendPreservesValue) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 4);
  const Bus e = b.sign_extend(x, 12);
  EXPECT_EQ(e.width(), 12u);
  for (std::int64_t v = -8; v < 8; ++v) {
    EXPECT_EQ(eval_bus(nl, x, e, v), v);
  }
}

TEST(CsdDigits, RecodesKnownValues) {
  // 7 = 8 - 1 -> digits [-1, 0, 0, 1]
  const auto d7 = csd_digits(7);
  ASSERT_EQ(d7.size(), 4u);
  EXPECT_EQ(d7[0], -1);
  EXPECT_EQ(d7[1], 0);
  EXPECT_EQ(d7[2], 0);
  EXPECT_EQ(d7[3], 1);
  EXPECT_TRUE(csd_digits(0).empty());
}

class CsdProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(CsdProperty, DigitsReconstructValueWithNoAdjacentNonzeros) {
  const std::int32_t v = GetParam();
  const auto digits = csd_digits(v);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    EXPECT_TRUE(digits[i] >= -1 && digits[i] <= 1);
    sum += static_cast<std::int64_t>(digits[i]) << i;
    if (i > 0) {
      EXPECT_FALSE(digits[i] != 0 && digits[i - 1] != 0)
          << "adjacent nonzero digits at " << i;
    }
  }
  EXPECT_EQ(sum, v);
}

INSTANTIATE_TEST_SUITE_P(Values, CsdProperty,
                         ::testing::Values(-1000, -517, -256, -255, -3, -1, 1, 2, 3,
                                           7, 11, 100, 255, 256, 341, 1023, 4096));

class ConstMultiply : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ConstMultiply, MatchesInt64Reference) {
  const std::int32_t coeff = GetParam();
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 8);
  const Bus p = b.multiply_const(x, coeff, "p");
  ParallelSimulator sim(nl);
  for (std::int64_t v = -128; v < 128; v += 3) {
    sim.set_bus(x, v);
    sim.eval();
    ASSERT_EQ(sim.bus_value(p, 0), v * coeff) << v << "*" << coeff;
  }
}

INSTANTIATE_TEST_SUITE_P(Coefficients, ConstMultiply,
                         ::testing::Values(0, 1, -1, 2, -2, 3, 5, -7, 64, 100, -100,
                                           255, -511, 1024, 2047, -2048));

TEST(Builder, RegisterBusDelaysByOneCycle) {
  Netlist nl;
  NetlistBuilder b(nl);
  const Bus x = b.input_bus("x", 8);
  const Bus q = b.register_bus(x, "q");
  ParallelSimulator sim(nl);
  std::int64_t prev = 0;  // reset state
  stats::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform_int(256)) - 128;
    sim.set_bus(x, v);
    sim.eval();
    EXPECT_EQ(sim.bus_value(q, 0), prev);
    sim.clock();
    prev = v;
  }
}

TEST(Builder, RejectsBadWidths) {
  Netlist nl;
  NetlistBuilder b(nl);
  EXPECT_THROW(b.input_bus("x", 0), std::invalid_argument);
  EXPECT_THROW(b.input_bus("x", 64), std::invalid_argument);
  const Bus x = b.input_bus("x", 8);
  EXPECT_THROW(b.sign_extend(x, 4), std::invalid_argument);
}

}  // namespace
}  // namespace msts::digital
