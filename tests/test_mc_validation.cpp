// Tests for the executed-test Monte-Carlo validation (core/mc_validation.h).
#include "core/mc_validation.h"

#include <gtest/gtest.h>

#include "core/synthesizer.h"

namespace msts::core {
namespace {

TEST(McValidation, LossesFiniteAndBelowWorstCasePrediction) {
  const auto config = path::reference_path_config();
  const TestSynthesizer synth(config, /*adaptive=*/true);
  const auto study = synth.study_mixer_iip3();
  stats::Rng rng(77);
  path::MeasureOptions opts;
  opts.digital_record = 1024;
  const auto v = validate_iip3_study_mc(config, study, 150, rng, true, opts);

  EXPECT_EQ(v.trials, 150);
  EXPECT_GT(v.weight_good, 0.0);
  EXPECT_GT(v.weight_faulty, 0.0);
  EXPECT_GE(v.fcl_measured, 0.0);
  EXPECT_LE(v.fcl_measured, 1.0);
  EXPECT_GE(v.yl_measured, 0.0);
  EXPECT_LE(v.yl_measured, 1.0);
  // The uniform worst-case analytic model upper-bounds the executed test
  // (generous slack for 150-trial statistics).
  EXPECT_LT(v.fcl_measured, v.fcl_predicted + 0.15);
  EXPECT_LT(v.yl_measured, v.yl_predicted + 0.10);
}

TEST(McValidation, MeasurementErrorWithinBudget) {
  const auto config = path::reference_path_config();
  const TestSynthesizer synth(config, /*adaptive=*/true);
  const auto study = synth.study_mixer_iip3();
  stats::Rng rng(78);
  path::MeasureOptions opts;
  opts.digital_record = 1024;
  const auto v = validate_iip3_study_mc(config, study, 60, rng, true, opts);
  // Mean |error| must sit well inside the worst-case budget.
  EXPECT_LT(v.mean_abs_meas_error, study.error_wc);
  EXPECT_GT(v.mean_abs_meas_error, 0.0);
}

TEST(McValidation, BitIdenticalAcrossThreadCounts) {
  // One RNG stream per trial plus a serial trial-order reduction: every
  // field must match exactly whatever the thread count.
  const auto config = path::reference_path_config();
  const TestSynthesizer synth(config, /*adaptive=*/true);
  const auto study = synth.study_mixer_iip3();
  path::MeasureOptions opts;
  opts.digital_record = 1024;

  auto run = [&](int threads) {
    stats::Rng rng(80);
    return validate_iip3_study_mc(config, study, 30, rng, true, opts, threads);
  };
  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.weight_good, serial.weight_good) << threads << " threads";
    EXPECT_EQ(parallel.weight_faulty, serial.weight_faulty) << threads << " threads";
    EXPECT_EQ(parallel.fcl_measured, serial.fcl_measured) << threads << " threads";
    EXPECT_EQ(parallel.yl_measured, serial.yl_measured) << threads << " threads";
    EXPECT_EQ(parallel.mean_abs_meas_error, serial.mean_abs_meas_error)
        << threads << " threads";
  }
}

TEST(McValidation, RejectsTooFewTrials) {
  const auto config = path::reference_path_config();
  const TestSynthesizer synth(config);
  stats::Rng rng(79);
  EXPECT_THROW(validate_iip3_study_mc(config, synth.study_mixer_iip3(), 5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace msts::core
