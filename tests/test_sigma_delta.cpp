// Tests for the sigma-delta modulator (analog/sigma_delta.h) and the CIC
// decimator (dsp/cic.h) — the alternative analog/digital interface the
// paper names in sec. 1.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "analog/sigma_delta.h"
#include "dsp/cic.h"
#include "dsp/metrics.h"
#include "dsp/spectrum.h"
#include "dsp/tonegen.h"
#include "stats/rng.h"

namespace msts {
namespace {

constexpr double kFsOver = 8.192e6;  // oversampled rate

analog::Signal tone(double freq, double amp, std::size_t n) {
  const dsp::Tone t{freq, amp, 0.0};
  analog::Signal s;
  s.fs = kFsOver;
  s.samples = dsp::generate_tones(std::span(&t, 1), 0.0, kFsOver, n);
  return s;
}

TEST(SigmaDelta, BitstreamMeanTracksDcInput) {
  analog::SigmaDeltaParams p;
  const analog::SigmaDeltaModulator mod(p);
  for (double dc : {-0.3, -0.1, 0.0, 0.2, 0.4}) {
    analog::Signal in;
    in.fs = kFsOver;
    in.samples.assign(32768, dc);
    const auto bits = mod.modulate(in);
    const double mean =
        std::accumulate(bits.begin(), bits.end(), 0.0) / static_cast<double>(bits.size());
    EXPECT_NEAR(mean * p.vref, dc, 0.01) << "dc=" << dc;
  }
}

TEST(SigmaDelta, NoiseIsShapedOutOfBand) {
  // In-band noise must be far below the near-Nyquist shaped noise.
  analog::SigmaDeltaParams p;
  const analog::SigmaDeltaModulator mod(p);
  const std::size_t n = 65536;
  const double f = dsp::coherent_frequency(kFsOver, n, 20e3);
  const auto bits = mod.modulate(tone(f, 0.25, n));
  std::vector<double> stream(bits.begin(), bits.end());
  const dsp::Spectrum s(stream, kFsOver, dsp::WindowType::kHann);
  const double lo_noise = s.summed_power(s.nearest_bin(40e3), s.nearest_bin(60e3));
  const double hi_noise =
      s.summed_power(s.nearest_bin(3.0e6), s.nearest_bin(3.02e6));
  EXPECT_GT(hi_noise / lo_noise, 100.0);  // > 20 dB of shaping
}

class SigmaDeltaEnob : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigmaDeltaEnob, ResolutionGrowsWithOversampling) {
  const std::size_t osr = GetParam();
  analog::SigmaDeltaParams p;
  const analog::SigmaDeltaModulator mod(p);
  const dsp::CicDecimator cic(3, osr);

  const std::size_t n_out = 2048;
  const std::size_t n = n_out * osr;
  const double fs_out = kFsOver / static_cast<double>(osr);
  const double f = dsp::coherent_frequency(fs_out, n_out, fs_out * 0.013);

  const auto bits = mod.modulate(tone(f, 0.25, n));
  const auto dec = cic.decimate(std::span(bits.data(), bits.size()));
  ASSERT_GE(dec.size(), n_out);
  const std::vector<double> rec(dec.end() - static_cast<long>(n_out), dec.end());

  dsp::AnalysisOptions ao;
  ao.fundamentals = {f};
  const auto rep = dsp::analyze_spectrum(
      dsp::Spectrum(rec, fs_out, dsp::WindowType::kBlackmanHarris4), ao);

  // 2nd-order modulator: ~15 dB SNR per octave of OSR. Loose floors only.
  if (osr == 32) EXPECT_GT(rep.snr_db, 50.0);
  if (osr == 64) EXPECT_GT(rep.snr_db, 62.0);
  if (osr == 128) EXPECT_GT(rep.snr_db, 72.0);
}

INSTANTIATE_TEST_SUITE_P(Osr, SigmaDeltaEnob, ::testing::Values<std::size_t>(32, 64, 128));

TEST(SigmaDelta, DacMismatchShowsAsOffsetNotDistortion) {
  // A 1-bit feedback DAC is inherently linear — two levels always define a
  // line — so a level error maps to offset/gain error, which is exactly how
  // the attribute model should budget it.
  analog::SigmaDeltaParams clean;
  analog::SigmaDeltaParams dirty;
  dirty.dac_mismatch_v = stats::Uncertain::exact(10e-3);

  auto mean_out = [&](const analog::SigmaDeltaParams& p) {
    const analog::SigmaDeltaModulator mod(p);
    analog::Signal in;
    in.fs = kFsOver;
    in.samples.assign(65536, 0.0);
    const auto bits = mod.modulate(in);
    double m = std::accumulate(bits.begin(), bits.end(), 0.0) /
               static_cast<double>(bits.size());
    return m * p.vref;
  };
  const double offset_clean = mean_out(clean);
  const double offset_dirty = mean_out(dirty);
  EXPECT_NEAR(offset_clean, 0.0, 1e-3);
  EXPECT_NEAR(offset_dirty, -5e-3, 1.5e-3);  // ~ -mismatch/2
}

TEST(SigmaDelta, SampledInstancesRespectTolerances) {
  analog::SigmaDeltaParams p;
  stats::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const auto mod = analog::SigmaDeltaModulator::sampled(p, rng);
    EXPECT_GE(mod.actual_integrator_gain(), 1.0 + p.integrator_gain_error.lower());
    EXPECT_LE(mod.actual_integrator_gain(), 1.0 + p.integrator_gain_error.upper());
  }
}

TEST(SigmaDelta, RejectsBadConfig) {
  analog::SigmaDeltaParams p;
  p.order = 3;
  EXPECT_THROW(analog::SigmaDeltaModulator{p}, std::invalid_argument);
  analog::SigmaDeltaParams q;
  q.vref = -1.0;
  EXPECT_THROW(analog::SigmaDeltaModulator{q}, std::invalid_argument);
}

TEST(Cic, DcGainIsUnityAfterNormalisation) {
  const dsp::CicDecimator cic(3, 16);
  std::vector<double> dc(16 * 64, 0.7);
  const auto out = cic.decimate(std::span(dc.data(), dc.size()));
  ASSERT_FALSE(out.empty());
  EXPECT_NEAR(out.back(), 0.7, 1e-5);  // after settling; 2^-20 quantisation
}

TEST(Cic, OutputLengthIsInputOverRatio) {
  const dsp::CicDecimator cic(2, 8);
  std::vector<int> x(800, 1);
  EXPECT_EQ(cic.decimate(std::span(x.data(), x.size())).size(), 100u);
}

TEST(Cic, MagnitudeResponseHasNullsAtOutputRateMultiples) {
  const dsp::CicDecimator cic(3, 16);
  EXPECT_NEAR(cic.magnitude_at(0.0), 1.0, 1e-12);
  // Nulls at k / R of the input rate.
  EXPECT_NEAR(cic.magnitude_at(1.0 / 16.0), 0.0, 1e-9);
  EXPECT_NEAR(cic.magnitude_at(2.0 / 16.0), 0.0, 1e-9);
  // Modest droop inside the output band.
  EXPECT_GT(cic.magnitude_at(0.25 / 16.0), 0.7);
}

TEST(Cic, ToneAttenuationMatchesClosedForm) {
  const int stages = 3;
  const std::size_t ratio = 16;
  const dsp::CicDecimator cic(stages, ratio);
  const std::size_t n_out = 1024;
  const std::size_t n = n_out * ratio;
  const double fs_out = kFsOver / static_cast<double>(ratio);
  const double f = dsp::coherent_frequency(fs_out, n_out, fs_out * 0.1);

  const auto in = dsp::generate_tones(
      std::array{dsp::Tone{f, 0.5, 0.0}}, 0.0, kFsOver, n);
  const auto out = cic.decimate(std::span(in.data(), in.size()));
  const std::vector<double> rec(out.end() - n_out, out.end());
  const dsp::Spectrum s(rec, fs_out, dsp::WindowType::kBlackmanHarris4);
  const double measured = dsp::measure_tone(s, f).amplitude;
  EXPECT_NEAR(measured / 0.5, cic.magnitude_at(f / kFsOver), 0.01);
}

TEST(Cic, RejectsBadConfig) {
  EXPECT_THROW(dsp::CicDecimator(0, 8), std::invalid_argument);
  EXPECT_THROW(dsp::CicDecimator(7, 8), std::invalid_argument);
  EXPECT_THROW(dsp::CicDecimator(3, 1), std::invalid_argument);
}

TEST(Cic, RejectsInputThatOverflowsTheAccumulatorWord) {
  // Hogenauer budget: the integrator word must hold
  // log2|x| + 20 (input scaling bits) + stages * log2(ratio) bits. For 6
  // stages at ratio 32 that leaves 62 - 20 - 30 = 12 bits of input headroom,
  // i.e. |x| <= 4096. Beyond that llround() on the scaled sample is UB /
  // the modular accumulators alias full-scale — so the filter must refuse.
  const dsp::CicDecimator cic(6, 32);
  const double limit = std::ldexp(1.0, 42) / cic.dc_gain();  // 4096
  EXPECT_NEAR(limit, 4096.0, 1e-9);

  std::vector<double> ok(32 * 8, 4000.0);
  EXPECT_NO_THROW(cic.decimate(std::span(ok.data(), ok.size())));

  std::vector<double> over(32 * 8, 5000.0);
  EXPECT_THROW(cic.decimate(std::span(over.data(), over.size())),
               std::invalid_argument);

  // A single out-of-budget sample anywhere in the record is enough.
  std::vector<double> spike(32 * 8, 0.5);
  spike[100] = -5000.0;
  EXPECT_THROW(cic.decimate(std::span(spike.data(), spike.size())),
               std::invalid_argument);

  // The everyday +/-1 bitstream case keeps working untouched.
  std::vector<int> bits(32 * 8);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i % 2 == 0) ? 1 : -1;
  EXPECT_NO_THROW(cic.decimate(std::span(bits.data(), bits.size())));
}

}  // namespace
}  // namespace msts
