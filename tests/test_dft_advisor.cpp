// Tests for the DFT advisor (core/dft_advisor.h).
#include "core/dft_advisor.h"

#include <gtest/gtest.h>

#include "path/receiver_path.h"

namespace msts::core {
namespace {

TEST(DftAdvisor, RecommendsExactlyTheUntranslatableTests) {
  const TestSynthesizer synth(path::reference_path_config());
  const auto plan = synth.synthesize();
  const auto report = advise_dft(plan);

  std::size_t expected_dft = 0;
  for (const auto& t : plan) {
    if (!t.translatable) ++expected_dft;
  }
  EXPECT_EQ(report.dft_tests, expected_dft);
  EXPECT_EQ(report.recommendations.size(), expected_dft);
  EXPECT_EQ(report.translated_tests + report.dft_tests, plan.size());
}

TEST(DftAdvisor, SavesTestPointsVsConventional) {
  const TestSynthesizer synth(path::reference_path_config());
  const auto report = advise_dft(synth.synthesize());
  EXPECT_LT(report.required_test_points, report.conventional_test_points);
  EXPECT_GT(report.required_test_points, 0u);  // some parameters do need access
}

TEST(DftAdvisor, RecommendationsNameConcreteAccess) {
  const TestSynthesizer synth(path::reference_path_config());
  const auto report = advise_dft(synth.synthesize());
  for (const auto& rec : report.recommendations) {
    EXPECT_FALSE(rec.access.empty());
    EXPECT_FALSE(rec.rationale.empty());
    EXPECT_NE(rec.access.find(rec.module), std::string::npos)
        << rec.module << "." << rec.parameter;
  }
}

TEST(DftAdvisor, EmptyPlanProducesEmptyReport) {
  const auto report = advise_dft({});
  EXPECT_EQ(report.dft_tests, 0u);
  EXPECT_EQ(report.translated_tests, 0u);
  EXPECT_TRUE(report.recommendations.empty());
  EXPECT_EQ(report.required_test_points, 0u);
}

TEST(DftAdvisor, FormatsReadably) {
  const TestSynthesizer synth(path::reference_path_config());
  const auto text = format_dft_report(advise_dft(synth.synthesize()));
  EXPECT_NE(text.find("insert:"), std::string::npos);
  EXPECT_NE(text.find("saved"), std::string::npos);
}

}  // namespace
}  // namespace msts::core
