// Tests for the deterministic parallel Monte-Carlo engine (stats/parallel.h)
// and its threading contract: bit-identical results for every thread count.
#include "stats/parallel.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/coverage.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "stats/yield.h"

namespace msts::stats {
namespace {

// Restores an environment variable after env-override tests so the rest of
// the suite keeps the ambient configuration.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name = "MSTS_THREADS") : name_(name) {
    const char* v = std::getenv(name_);
    had_ = (v != nullptr);
    if (had_) saved_ = v;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

TEST(Threads, EnvOverrideAndResolution) {
  EnvGuard guard;
  ::setenv("MSTS_THREADS", "3", 1);
  EXPECT_EQ(max_threads(), 3);
  EXPECT_EQ(resolve_threads(0), 3);
  EXPECT_EQ(resolve_threads(5), 5);  // explicit request wins
  ::unsetenv("MSTS_THREADS");
  EXPECT_GE(max_threads(), 1);
}

// A malformed MSTS_THREADS is a loud error, not a silent fallback: every
// shape of bad input (non-numeric, trailing junk, zero, negative, overflow,
// out of range, empty) throws std::invalid_argument naming the variable.
TEST(Threads, MalformedEnvOverrideThrows) {
  EnvGuard guard;
  // Note: an *empty* MSTS_THREADS counts as unset, not malformed.
  for (const char* bad : {"garbage", "3x", "0", "-2", "4097",
                          "99999999999999999999", " ", "1.5"}) {
    ::setenv("MSTS_THREADS", bad, 1);
    EXPECT_THROW(max_threads(), std::invalid_argument) << "value '" << bad << "'";
    EXPECT_THROW(resolve_threads(0), std::invalid_argument) << "value '" << bad << "'";
    // An explicit request never consults the environment.
    EXPECT_EQ(resolve_threads(2), 2) << "value '" << bad << "'";
  }
  ::setenv("MSTS_THREADS", "garbage", 1);
  try {
    (void)max_threads();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MSTS_THREADS"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("garbage"), std::string::npos);
  }
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    const std::size_t n = 257;  // deliberately not a multiple of anything
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for_index(n, threads, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for_index(64, 4,
                         [](std::size_t i) {
                           if (i == 17) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

// Nested calls compose on the scheduler (child task-sets on the same
// workers) instead of serializing or oversubscribing; every inner index
// still runs exactly once.
TEST(ParallelFor, NestedRegionsComposeOnTheScheduler) {
  std::vector<std::atomic<int>> hits(4 * 8);
  for (auto& h : hits) h.store(0);
  parallel_for_index(4, 4, [&](std::size_t outer) {
    parallel_for_index(8, 4, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

// ---------------------------------------------------------------------------
// Degenerate partitions — the pinned behaviors from the header contract.
// ---------------------------------------------------------------------------

// n == 0: fn is never called, whatever the thread request says.
TEST(ParallelFor, ZeroIndicesNeverCallsTheBody) {
  for (const int threads : {1, 4, 0}) {
    std::atomic<int> calls{0};
    parallel_for_index(0, threads,
                       [&](std::size_t) { calls.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(calls.load(), 0) << threads << " threads";
  }
}

// n == 1: fn(0) runs serially on the calling thread even when many threads
// are requested (a single chunk has nothing to distribute).
TEST(ParallelFor, SingleIndexRunsOnTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  for (const int threads : {1, 8}) {
    int calls = 0;  // deliberately unsynchronized: must run on this thread
    std::thread::id ran_on;
    parallel_for_index(1, threads, [&](std::size_t i) {
      EXPECT_EQ(i, 0u);
      ran_on = std::this_thread::get_id();
      ++calls;
    });
    EXPECT_EQ(calls, 1) << threads << " threads";
    EXPECT_EQ(ran_on, caller) << threads << " threads";
  }
}

// threads > n: the worker request clamps to n — every index still runs
// exactly once, and a task-set never has more chunks than indices.
TEST(ParallelFor, MoreThreadsThanIndicesClampsToIndices) {
  const std::size_t n = 3;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for_index(n, 64, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// An explicit threads == 1 stays serial (index order, calling thread) even
// when invoked from inside a scheduler task — the nested-MC opt-out.
TEST(ParallelFor, ExplicitSerialStaysSerialInsideWorkerTasks) {
  std::atomic<int> out_of_order{0};
  parallel_for_index(4, 4, [&](std::size_t) {
    const std::thread::id me = std::this_thread::get_id();
    std::size_t expected = 0;
    parallel_for_index(16, 1, [&](std::size_t i) {
      if (i != expected++ || std::this_thread::get_id() != me) {
        out_of_order.fetch_add(1, std::memory_order_relaxed);
      }
    });
  });
  EXPECT_EQ(out_of_order.load(), 0);
}

TEST(MakeStreams, DeterministicAndPairwiseDistinct) {
  const Rng base(1234);
  const auto a = make_streams(base, 6);
  auto b = make_streams(base, 6);
  ASSERT_EQ(a.size(), 6u);
  // Same base -> identical streams.
  for (std::size_t k = 0; k < a.size(); ++k) {
    Rng x = a[k], y = b[k];
    for (int i = 0; i < 32; ++i) ASSERT_EQ(x.next_u64(), y.next_u64());
  }
  // Distinct streams never agree on early draws.
  auto c = make_streams(base, 6);
  std::vector<std::vector<std::uint64_t>> draws;
  for (auto& s : c) {
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 32; ++i) seq.push_back(s.next_u64());
    draws.push_back(seq);
  }
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      int same = 0;
      for (int k = 0; k < 32; ++k) {
        if (draws[i][k] == draws[j][k]) ++same;
      }
      EXPECT_EQ(same, 0) << "streams " << i << " and " << j;
    }
  }
}

// The headline property: the parallel MC evaluator returns bit-identical
// outcomes for 1, 2, and 8 threads.
TEST(EvaluateTestMcParallel, BitIdenticalAcrossThreadCounts) {
  const Normal param{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  const auto model = ErrorModel::uniform(0.4);

  std::vector<TestOutcome> outcomes;
  for (const int threads : {1, 2, 8}) {
    Rng rng(424242);
    outcomes.push_back(evaluate_test_mc(param, spec, spec, model, rng, 100000, threads));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[0].yield, outcomes[i].yield);
    EXPECT_EQ(outcomes[0].defect_rate, outcomes[i].defect_rate);
    EXPECT_EQ(outcomes[0].accept_rate, outcomes[i].accept_rate);
    EXPECT_EQ(outcomes[0].yield_loss, outcomes[i].yield_loss);
    EXPECT_EQ(outcomes[0].fault_coverage_loss, outcomes[i].fault_coverage_loss);
  }
}

// Determinism under instrumentation: enabling trace collection must not
// perturb a single bit of the MC results at any thread count. Tracing reads
// clocks and buffers events but never touches RNG streams or the reduction.
TEST(EvaluateTestMcParallel, BitIdenticalWithTracingEnabled) {
  const Normal param{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  const auto model = ErrorModel::uniform(0.4);
  const int trials = 100000;

  EnvGuard trace_guard("MSTS_TRACE");
  const obs::Config saved = obs::current_config();

  // Baseline: tracing off (MSTS_TRACE unset).
  ::unsetenv("MSTS_TRACE");
  obs::configure(obs::Config::from_env());
  (void)obs::trace_take();
  Rng base_rng(424242);
  const auto baseline = evaluate_test_mc(param, spec, spec, model, base_rng, trials, 1);

  // Same computation with MSTS_TRACE=1.
  ::setenv("MSTS_TRACE", "1", 1);
  obs::configure(obs::Config::from_env());
  for (const int threads : {1, 2, 8}) {
    Rng rng(424242);
    const auto traced = evaluate_test_mc(param, spec, spec, model, rng, trials, threads);
    EXPECT_EQ(baseline.yield, traced.yield) << threads << " threads";
    EXPECT_EQ(baseline.defect_rate, traced.defect_rate) << threads << " threads";
    EXPECT_EQ(baseline.accept_rate, traced.accept_rate) << threads << " threads";
    EXPECT_EQ(baseline.yield_loss, traced.yield_loss) << threads << " threads";
    EXPECT_EQ(baseline.fault_coverage_loss, traced.fault_coverage_loss)
        << threads << " threads";

    // The traced run did emit one event per MC block, in deterministic order.
    const auto events = obs::trace_take();
    const std::size_t nblocks = (trials + 8191) / 8192;
    ASSERT_EQ(events.size(), nblocks) << threads << " threads";
    for (std::size_t b = 0; b < events.size(); ++b) {
      EXPECT_EQ(events[b].kind, obs::TraceKind::kMcBlock);
      EXPECT_EQ(events[b].label, "stats.evaluate_test_mc");
      EXPECT_EQ(events[b].order, b);
    }
  }

  ::unsetenv("MSTS_TRACE");
  obs::configure(saved);
  (void)obs::trace_take();
}

TEST(EvaluateTestMcParallel, CallerRngAdvancesIndependentlyOfThreadCount) {
  const Normal param{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  Rng a(7), b(7);
  (void)evaluate_test_mc(param, spec, spec, ErrorModel::none(), a, 2000, 1);
  (void)evaluate_test_mc(param, spec, spec, ErrorModel::none(), b, 2000, 4);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------------------
// Concurrent top-level callers. parallel_for_index used to hold a process-
// wide mutex for the whole call, silently serializing independent callers
// (and destroying/rebuilding the shared pool under them on growth). These
// tests pin the fixed contract; both run under TSan in the sanitizer leg.
// ---------------------------------------------------------------------------

// Two top-level parallel_for_index calls must be able to make progress at
// the same time. Each call's body announces its own arrival and then waits
// (bounded) for the other call's arrival: under the old whole-call lock the
// second call could never start, so the rendezvous times out and the test
// fails instead of hanging.
TEST(ParallelConcurrentCallers, TopLevelCallsOverlap) {
  std::mutex mu;
  std::condition_variable cv;
  bool arrived[2] = {false, false};
  std::atomic<bool> timed_out{false};

  auto run_call = [&](int call) {
    parallel_for_index(2, 2, [&, call](std::size_t) {
      std::unique_lock<std::mutex> lock(mu);
      arrived[call] = true;
      cv.notify_all();
      if (!cv.wait_for(lock, std::chrono::seconds(20),
                       [&] { return arrived[1 - call]; })) {
        timed_out.store(true, std::memory_order_relaxed);
      }
    });
  };

  std::thread other([&] { run_call(1); });
  run_call(0);
  other.join();
  EXPECT_FALSE(timed_out.load())
      << "concurrent top-level parallel_for_index calls did not overlap";
}

// The stress half: several top-level callers, each itself running a
// multi-threaded MC, racing on the shared pool (including pool growth from
// a larger thread request) — every result bit-identical to its serial run.
TEST(ParallelConcurrentCallers, ConcurrentMcCallersBitIdenticalToSerial) {
  constexpr int kCallers = 3;
  constexpr int kRepeats = 2;
  constexpr int kTrials = 60000;
  const Normal param{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  const auto model = ErrorModel::gaussian(0.3);

  TestOutcome serial[kCallers];
  for (int c = 0; c < kCallers; ++c) {
    Rng rng(1000 + c);
    serial[c] = evaluate_test_mc(param, spec, spec, model, rng, kTrials, 1);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int r = 0; r < kRepeats; ++r) {
        Rng rng(1000 + c);
        // Different thread counts per caller: one of them grows the pool.
        const auto out =
            evaluate_test_mc(param, spec, spec, model, rng, kTrials, 2 + c);
        if (out.yield != serial[c].yield ||
            out.defect_rate != serial[c].defect_rate ||
            out.accept_rate != serial[c].accept_rate ||
            out.yield_loss != serial[c].yield_loss ||
            out.fault_coverage_loss != serial[c].fault_coverage_loss) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Cross-check: for all three threshold rows of a threshold_study, the MC
// losses agree with the analytic integrals within 3 sigma of the binomial
// counting error of the relevant subpopulation.
TEST(EvaluateTestMcParallel, MatchesAnalyticWithin3SigmaForAllThresholdRows) {
  const Normal population{10.0, 1.0};
  const auto spec = SpecLimits::at_least(8.5);
  const auto error = Uncertain::from_tolerance(0.0, 0.4);
  const auto study = core::threshold_study("mixer.IIP3", "dBm", population, spec, error);
  ASSERT_EQ(study.rows.size(), 3u);

  const auto model = ErrorModel::uniform(error.wc);
  const int trials = 200000;
  // 3-sigma binomial bound around rate p estimated from n_eff samples, with
  // a floor so zero-loss rows (p == 0) keep a meaningful tolerance.
  const auto bound3 = [](double p, double n_eff) {
    return 3.0 * std::sqrt(std::max(p * (1.0 - p), 1e-6) / n_eff) + 1e-9;
  };

  for (const auto& row : study.rows) {
    Rng rng(909090);
    const auto mc =
        evaluate_test_mc(population, spec, row.threshold, model, rng, trials);
    const auto& an = row.outcome;

    const double n_faulty = trials * an.defect_rate;
    const double n_good = trials * an.yield;
    EXPECT_NEAR(mc.accept_rate, an.accept_rate, bound3(an.accept_rate, trials))
        << row.label;
    EXPECT_NEAR(mc.yield, an.yield, bound3(an.yield, trials)) << row.label;
    EXPECT_NEAR(mc.yield_loss, an.yield_loss, bound3(an.yield_loss, n_good))
        << row.label;
    EXPECT_NEAR(mc.fault_coverage_loss, an.fault_coverage_loss,
                bound3(an.fault_coverage_loss, n_faulty))
        << row.label;
  }
}

}  // namespace
}  // namespace msts::stats
